#include "storage/csv.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>

#include "storage/pagestore/paged_table.h"

namespace cleanm {

namespace {

/// Splits one CSV record, honouring double-quote escaping. `pos` advances
/// past the record's trailing newline. `newlines` counts every '\n'
/// consumed (quoted embedded newlines included) so the caller can keep a
/// physical line counter; `unterminated` reports a quote still open when
/// the record ended (at EOF — an embedded newline just continues the
/// record), which tolerant loads treat as a bad row.
std::vector<std::string> SplitRecord(const std::string& text, size_t* pos, char delim,
                                     size_t* newlines, bool* unterminated) {
  std::vector<std::string> out;
  std::string cur;
  bool in_quotes = false;
  *newlines = 0;
  size_t i = *pos;
  for (; i < text.size(); i++) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cur += '"';
          i++;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++*newlines;
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delim) {
      out.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\n') {
      ++*newlines;
      i++;
      break;
    } else if (c == '\r') {
      // swallow; \n handled next iteration
    } else {
      cur += c;
    }
  }
  out.push_back(std::move(cur));
  *pos = i;
  *unterminated = in_quotes;
  return out;
}

bool LooksLikeInt(const std::string& s) {
  if (s.empty()) return false;
  size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); i++) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

bool LooksLikeDouble(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

Value ParseCell(const std::string& s, bool infer) {
  if (s.empty()) return Value::Null();
  if (!infer) return Value(s);
  if (LooksLikeInt(s)) return Value(static_cast<int64_t>(std::strtoll(s.c_str(), nullptr, 10)));
  if (LooksLikeDouble(s)) return Value(std::strtod(s.c_str(), nullptr));
  return Value(s);
}

void WriteCell(const Value& v, char delim, std::ostream& os) {
  const std::string s = v.is_null() ? "" : v.ToString();
  const bool needs_quotes = s.find(delim) != std::string::npos ||
                            s.find('"') != std::string::npos ||
                            s.find('\n') != std::string::npos;
  if (!needs_quotes) {
    os << s;
    return;
  }
  os << '"';
  for (char c : s) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

/// Streaming parse core shared by the resident and paged readers: hands
/// each accepted row to `emit` (which may move it straight into a page
/// store) and returns the inferred schema. Column types are tracked online
/// — first non-null value per column — so no row needs to be retained for
/// a second schema pass.
Result<Schema> ParseCsvCore(const std::string& text, const CsvOptions& options,
                            ReadReport* report,
                            const std::function<Status(Row&&)>& emit) {
  if (report) *report = ReadReport{};
  std::vector<BadRow> bad_rows;
  // Skips one malformed record (recording it) while under the cap; over
  // the cap the whole load fails, naming the line.
  auto skip_or_fail = [&](size_t line_no, std::string error) -> Status {
    if (bad_rows.size() < options.read.max_bad_rows) {
      bad_rows.push_back({line_no, std::move(error)});
      return Status::OK();
    }
    std::string prefix = options.read.max_bad_rows
                             ? "more than " + std::to_string(options.read.max_bad_rows) +
                                   " bad rows; "
                             : "";
    return Status::ParseError(prefix + "line " + std::to_string(line_no) + ": " +
                              std::move(error));
  };

  size_t pos = 0;
  size_t line = 1;  // 1-based physical line of the next record
  size_t newlines = 0;
  bool unterminated = false;
  std::vector<std::string> header;
  if (options.has_header) {
    if (pos >= text.size()) return Status::ParseError("empty CSV input");
    header = SplitRecord(text, &pos, options.delimiter, &newlines, &unterminated);
    if (unterminated) {
      return Status::ParseError("line 1: unterminated quoted field in header");
    }
    line += newlines;
  }

  size_t width = header.size();
  size_t rows_loaded = 0;
  std::vector<ValueType> col_types(width, ValueType::kString);
  std::vector<bool> col_typed(width, false);
  while (pos < text.size()) {
    const size_t record_line = line;
    auto cells = SplitRecord(text, &pos, options.delimiter, &newlines, &unterminated);
    line += newlines;
    if (!unterminated && cells.size() == 1 && cells[0].empty()) continue;  // blank line
    if (unterminated) {
      CLEANM_RETURN_NOT_OK(
          skip_or_fail(record_line, "unterminated quoted field"));
      continue;
    }
    if (width == 0) {
      width = cells.size();
      col_types.assign(width, ValueType::kString);
      col_typed.assign(width, false);
    }
    if (cells.size() != width) {
      CLEANM_RETURN_NOT_OK(skip_or_fail(
          record_line, "CSV record has " + std::to_string(cells.size()) +
                           " fields, expected " + std::to_string(width)));
      continue;
    }
    Row row;
    row.reserve(cells.size());
    for (const auto& c : cells) row.push_back(ParseCell(c, options.infer_types));
    for (size_t i = 0; i < width; i++) {
      if (!col_typed[i] && !row[i].is_null()) {
        col_types[i] = row[i].type();
        col_typed[i] = true;
      }
    }
    CLEANM_RETURN_NOT_OK(emit(std::move(row)));
    rows_loaded++;
  }
  if (report) {
    report->bad_rows = std::move(bad_rows);
    report->rows_loaded = rows_loaded;
  }

  // Schema: header names (or f0..fn), types from the first non-null value
  // seen in each column.
  std::vector<Field> fields;
  for (size_t i = 0; i < width; i++) {
    Field f;
    f.name = options.has_header ? header[i] : ("f" + std::to_string(i));
    f.type = col_types[i];
    fields.push_back(std::move(f));
  }
  return Schema(std::move(fields));
}

}  // namespace

Result<Dataset> ParseCsvString(const std::string& text, const CsvOptions& options,
                               ReadReport* report) {
  std::vector<Row> rows;
  CLEANM_ASSIGN_OR_RETURN(
      Schema schema, ParseCsvCore(text, options, report, [&](Row&& row) {
        rows.push_back(std::move(row));
        return Status::OK();
      }));
  return Dataset(std::move(schema), std::move(rows));
}

Result<Dataset> ReadCsv(const std::string& path, const CsvOptions& options,
                        ReadReport* report) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsvString(buf.str(), options, report);
}

Result<PagedTable> ReadCsvPaged(const std::string& path, const CsvOptions& options,
                                ReadReport* report) {
  if (!options.read.page_store) {
    return Status::InvalidArgument(
        "ReadCsvPaged requires ReadOptions::page_store (see ReadOptions)");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  // Accepted rows stream into the page store a page-sized chunk at a time;
  // only the builder's current open chunk is resident.
  PagedTableBuilder builder(options.read.page_store);
  CLEANM_ASSIGN_OR_RETURN(
      Schema schema, ParseCsvCore(buf.str(), options, report,
                                  [&](Row&& row) { return builder.Append(row); }));
  return builder.Finish(std::move(schema));
}

Status WriteCsv(const Dataset& dataset, const std::string& path,
                const CsvOptions& options) {
  for (const auto& f : dataset.schema().fields()) {
    if (f.type == ValueType::kList || f.type == ValueType::kStruct) {
      return Status::InvalidArgument("CSV cannot store nested column '" + f.name +
                                     "'; flatten the dataset first");
    }
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot create '" + path + "'");
  if (options.has_header) {
    for (size_t i = 0; i < dataset.schema().num_fields(); i++) {
      if (i) out << options.delimiter;
      out << dataset.schema().field(i).name;
    }
    out << '\n';
  }
  for (const auto& row : dataset.rows()) {
    for (size_t i = 0; i < row.size(); i++) {
      if (i) out << options.delimiter;
      WriteCell(row[i], options.delimiter, out);
    }
    out << '\n';
  }
  if (!out) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

}  // namespace cleanm
