// Minimal XML reader/writer for DBLP-style bibliographic records.
//
// The paper's duplicate-elimination and term-validation experiments run over
// a DBLP XML subset (Section 8). We support the shape those records use:
//
//   <root>
//     <record>
//       <scalarfield>text</scalarfield>
//       <repeatedfield>a</repeatedfield>   <!-- repeats become a list -->
//       <repeatedfield>b</repeatedfield>
//     </record>
//   </root>
//
// Attributes are ignored; entity references for & < > are decoded. This is
// not a general XML processor — it is the substrate the experiments need.
#pragma once

#include <string>

#include "common/status.h"
#include "storage/dataset.h"

namespace cleanm {

/// Reads a DBLP-style XML file: children of the root element become rows;
/// their child elements become columns (repeated elements → list columns).
Result<Dataset> ReadXml(const std::string& path);

/// Parses XML text held in memory (used by tests).
Result<Dataset> ParseXmlString(const std::string& text);

/// Writes a dataset in the same record shape, with `record_tag` per row.
Status WriteXml(const Dataset& dataset, const std::string& path,
                const std::string& root_tag = "dblp",
                const std::string& record_tag = "article");

}  // namespace cleanm
