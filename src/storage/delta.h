// Mutation delta log: the storage half of incremental cleaning.
//
// A table mutation (CleanDB::AppendRows / UpdateRows / DeleteRows) does not
// re-register the dataset — it publishes a new effective Dataset *and* a
// TableDelta describing exactly which rows the mutation added and removed.
// The per-table DeltaLog accumulates those entries between registrations;
// RegisterTable (a *major* generation bump) drops the log and starts a new
// epoch. Consumers — the planner's delta-extended scan rebuild and the
// driver-side incremental validator — collect the entries between the
// version they last saw and the snapshot they are executing against, and
// apply only those rows instead of reprocessing the table.
//
// Logs are immutable snapshots: a mutation copies the entry vector (cheap —
// entries are shared_ptr-owned) and publishes a new DeltaLog, so an
// execution holding a snapshot lease reads a frozen log while later
// mutations append to newer copies.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/value.h"

namespace cleanm {

/// One mutation's row-level effect. An update contributes its pre-image to
/// `removed` and its post-image to `added` (only rows that actually
/// changed); an append contributes to `added` only, a delete to `removed`
/// only. Rows are in the table's schema order (plain storage Rows, not
/// wrapped physical tuples).
struct TableDelta {
  /// The table version (CleanDB::TableGeneration) this mutation produced.
  uint64_t generation = 0;
  /// The minor ordinal within the current major epoch (1 = first mutation
  /// after the last RegisterTable).
  uint64_t minor = 0;
  std::vector<Row> added;
  std::vector<Row> removed;
};

/// \brief Immutable snapshot of a table's mutation history since its last
/// registration. Copy + Append to derive the successor log.
class DeltaLog {
 public:
  DeltaLog() = default;

  void Append(std::shared_ptr<const TableDelta> delta) {
    entries_.push_back(std::move(delta));
  }

  const std::vector<std::shared_ptr<const TableDelta>>& entries() const {
    return entries_;
  }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Flattens the entries covering versions (from_exclusive, to_inclusive]
  /// into `added`/`removed`, netting out rows that were added and then
  /// removed within the window (so `removed` only names rows that existed
  /// at `from_exclusive`, and `added` only rows that still exist at
  /// `to_inclusive`). Returns false — and leaves the outputs untouched —
  /// when the log does not contiguously cover the window (e.g. the caller's
  /// base version predates this epoch); callers then fall back to a full
  /// rebuild.
  bool Collect(uint64_t from_exclusive, uint64_t to_inclusive,
               std::vector<Row>* added, std::vector<Row>* removed) const;

 private:
  std::vector<std::shared_ptr<const TableDelta>> entries_;
};

}  // namespace cleanm
