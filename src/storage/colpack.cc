#include "storage/colpack.h"

#include <cstring>
#include <fstream>
#include <unordered_map>

#include "storage/json.h"

namespace cleanm {

namespace {

constexpr char kMagic[4] = {'C', 'P', 'K', '1'};

// Column encodings.
constexpr uint8_t kEncNullable = 0x80;  // OR'd flag: null bitmap present
constexpr uint8_t kEncInt = 1;
constexpr uint8_t kEncDouble = 2;
constexpr uint8_t kEncBool = 3;
constexpr uint8_t kEncDictString = 4;
constexpr uint8_t kEncNested = 5;  // serialized dynamic values

template <typename T>
void PutPod(std::ostream& os, T v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool GetPod(std::istream& is, T* v) {
  is.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(is);
}

void PutString(std::ostream& os, const std::string& s) {
  PutPod<uint32_t>(os, static_cast<uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool GetString(std::istream& is, std::string* s) {
  uint32_t len;
  if (!GetPod(is, &len)) return false;
  s->resize(len);
  is.read(s->data(), len);
  return static_cast<bool>(is);
}

/// Serializes an arbitrary (possibly nested) value as JSON text prefixed by
/// its type tag; good enough for the nested fallback path.
void PutNested(std::ostream& os, const Value& v) {
  PutPod<uint8_t>(os, static_cast<uint8_t>(v.type()));
  if (v.is_null()) return;
  switch (v.type()) {
    case ValueType::kBool: PutPod<uint8_t>(os, v.AsBool() ? 1 : 0); break;
    case ValueType::kInt: PutPod<int64_t>(os, v.AsInt()); break;
    case ValueType::kDouble: PutPod<double>(os, v.AsDouble()); break;
    case ValueType::kString: PutString(os, v.AsString()); break;
    case ValueType::kList: {
      PutPod<uint32_t>(os, static_cast<uint32_t>(v.AsList().size()));
      for (const auto& e : v.AsList()) PutNested(os, e);
      break;
    }
    case ValueType::kStruct: {
      PutPod<uint32_t>(os, static_cast<uint32_t>(v.AsStruct().size()));
      for (const auto& [name, e] : v.AsStruct()) {
        PutString(os, name);
        PutNested(os, e);
      }
      break;
    }
    default: break;
  }
}

Result<Value> GetNested(std::istream& is) {
  uint8_t tag;
  if (!GetPod(is, &tag)) return Status::IOError("truncated nested value");
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull: return Value::Null();
    case ValueType::kBool: {
      uint8_t b;
      if (!GetPod(is, &b)) return Status::IOError("truncated bool");
      return Value(b != 0);
    }
    case ValueType::kInt: {
      int64_t i;
      if (!GetPod(is, &i)) return Status::IOError("truncated int");
      return Value(i);
    }
    case ValueType::kDouble: {
      double d;
      if (!GetPod(is, &d)) return Status::IOError("truncated double");
      return Value(d);
    }
    case ValueType::kString: {
      std::string s;
      if (!GetString(is, &s)) return Status::IOError("truncated string");
      return Value(std::move(s));
    }
    case ValueType::kList: {
      uint32_t n;
      if (!GetPod(is, &n)) return Status::IOError("truncated list");
      ValueList items;
      items.reserve(n);
      for (uint32_t i = 0; i < n; i++) {
        CLEANM_ASSIGN_OR_RETURN(Value e, GetNested(is));
        items.push_back(std::move(e));
      }
      return Value(std::move(items));
    }
    case ValueType::kStruct: {
      uint32_t n;
      if (!GetPod(is, &n)) return Status::IOError("truncated struct");
      ValueStruct fields;
      fields.reserve(n);
      for (uint32_t i = 0; i < n; i++) {
        std::string name;
        if (!GetString(is, &name)) return Status::IOError("truncated field name");
        CLEANM_ASSIGN_OR_RETURN(Value e, GetNested(is));
        fields.emplace_back(std::move(name), std::move(e));
      }
      return Value(std::move(fields));
    }
  }
  return Status::IOError("bad value tag in colpack file");
}

/// Chooses the physical encoding for a column by inspecting its values.
uint8_t PickEncoding(const Dataset& d, size_t col, bool* nullable) {
  bool has_null = false;
  ValueType seen = ValueType::kNull;
  bool mixed = false;
  for (const auto& r : d.rows()) {
    const Value& v = r[col];
    if (v.is_null()) {
      has_null = true;
      continue;
    }
    if (seen == ValueType::kNull) {
      seen = v.type();
    } else if (seen != v.type()) {
      mixed = true;
    }
  }
  *nullable = has_null;
  if (mixed) return kEncNested;
  switch (seen) {
    case ValueType::kInt: return kEncInt;
    case ValueType::kDouble: return kEncDouble;
    case ValueType::kBool: return kEncBool;
    case ValueType::kString: return kEncDictString;
    case ValueType::kNull: return kEncNested;  // all-null column
    default: return kEncNested;
  }
}

}  // namespace

Status WriteColpack(const Dataset& dataset, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return Status::IOError("cannot create '" + path + "'");
  os.write(kMagic, 4);
  PutPod<uint32_t>(os, static_cast<uint32_t>(dataset.schema().num_fields()));
  PutPod<uint64_t>(os, dataset.num_rows());

  const size_t nrows = dataset.num_rows();
  for (size_t c = 0; c < dataset.schema().num_fields(); c++) {
    PutString(os, dataset.schema().field(c).name);
    bool nullable = false;
    const uint8_t enc = PickEncoding(dataset, c, &nullable);
    PutPod<uint8_t>(os, enc | (nullable ? kEncNullable : 0));
    if (nullable) {
      // Packed null bitmap (1 = present).
      for (size_t i = 0; i < nrows; i += 8) {
        uint8_t byte = 0;
        for (size_t b = 0; b < 8 && i + b < nrows; b++) {
          if (!dataset.row(i + b)[c].is_null()) byte |= (1u << b);
        }
        PutPod<uint8_t>(os, byte);
      }
    }
    switch (enc) {
      case kEncInt:
        for (size_t i = 0; i < nrows; i++) {
          const Value& v = dataset.row(i)[c];
          PutPod<int64_t>(os, v.is_null() ? 0 : v.AsInt());
        }
        break;
      case kEncDouble:
        for (size_t i = 0; i < nrows; i++) {
          const Value& v = dataset.row(i)[c];
          PutPod<double>(os, v.is_null() ? 0.0 : v.AsDouble());
        }
        break;
      case kEncBool:
        for (size_t i = 0; i < nrows; i++) {
          const Value& v = dataset.row(i)[c];
          PutPod<uint8_t>(os, (!v.is_null() && v.AsBool()) ? 1 : 0);
        }
        break;
      case kEncDictString: {
        // Build the dictionary in first-seen order.
        std::unordered_map<std::string, uint32_t> dict;
        std::vector<const std::string*> entries;
        std::vector<uint32_t> codes(nrows, 0);
        for (size_t i = 0; i < nrows; i++) {
          const Value& v = dataset.row(i)[c];
          if (v.is_null()) continue;
          auto [it, inserted] = dict.emplace(v.AsString(), static_cast<uint32_t>(entries.size()));
          if (inserted) entries.push_back(&it->first);
          codes[i] = it->second;
        }
        PutPod<uint32_t>(os, static_cast<uint32_t>(entries.size()));
        for (const auto* e : entries) PutString(os, *e);
        for (uint32_t code : codes) PutPod<uint32_t>(os, code);
        break;
      }
      case kEncNested:
        for (size_t i = 0; i < nrows; i++) PutNested(os, dataset.row(i)[c]);
        break;
      default:
        return Status::Internal("unknown colpack encoding");
    }
  }
  if (!os) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

Result<Dataset> ReadColpack(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::IOError("cannot open '" + path + "'");
  char magic[4];
  is.read(magic, 4);
  if (!is || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::IOError("'" + path + "' is not a colpack file");
  }
  uint32_t ncols;
  uint64_t nrows;
  if (!GetPod(is, &ncols) || !GetPod(is, &nrows)) {
    return Status::IOError("truncated colpack header");
  }

  std::vector<Field> fields;
  std::vector<std::vector<Value>> columns(ncols);
  for (uint32_t c = 0; c < ncols; c++) {
    std::string name;
    if (!GetString(is, &name)) return Status::IOError("truncated column name");
    uint8_t enc_byte;
    if (!GetPod(is, &enc_byte)) return Status::IOError("truncated column encoding");
    const bool nullable = (enc_byte & kEncNullable) != 0;
    const uint8_t enc = enc_byte & ~kEncNullable;

    std::vector<bool> present(nrows, true);
    if (nullable) {
      for (uint64_t i = 0; i < nrows; i += 8) {
        uint8_t byte;
        if (!GetPod(is, &byte)) return Status::IOError("truncated null bitmap");
        for (uint64_t b = 0; b < 8 && i + b < nrows; b++) {
          present[i + b] = (byte >> b) & 1;
        }
      }
    }

    auto& col = columns[c];
    col.reserve(nrows);
    ValueType ftype = ValueType::kString;
    switch (enc) {
      case kEncInt: {
        ftype = ValueType::kInt;
        for (uint64_t i = 0; i < nrows; i++) {
          int64_t v;
          if (!GetPod(is, &v)) return Status::IOError("truncated int column");
          col.push_back(present[i] ? Value(v) : Value::Null());
        }
        break;
      }
      case kEncDouble: {
        ftype = ValueType::kDouble;
        for (uint64_t i = 0; i < nrows; i++) {
          double v;
          if (!GetPod(is, &v)) return Status::IOError("truncated double column");
          col.push_back(present[i] ? Value(v) : Value::Null());
        }
        break;
      }
      case kEncBool: {
        ftype = ValueType::kBool;
        for (uint64_t i = 0; i < nrows; i++) {
          uint8_t v;
          if (!GetPod(is, &v)) return Status::IOError("truncated bool column");
          col.push_back(present[i] ? Value(v != 0) : Value::Null());
        }
        break;
      }
      case kEncDictString: {
        ftype = ValueType::kString;
        uint32_t dict_size;
        if (!GetPod(is, &dict_size)) return Status::IOError("truncated dictionary");
        std::vector<std::string> dict(dict_size);
        for (auto& e : dict) {
          if (!GetString(is, &e)) return Status::IOError("truncated dictionary entry");
        }
        for (uint64_t i = 0; i < nrows; i++) {
          uint32_t code;
          if (!GetPod(is, &code)) return Status::IOError("truncated string codes");
          if (!present[i]) {
            col.push_back(Value::Null());
          } else {
            if (code >= dict.size()) return Status::IOError("string code out of range");
            col.push_back(Value(dict[code]));
          }
        }
        break;
      }
      case kEncNested: {
        for (uint64_t i = 0; i < nrows; i++) {
          CLEANM_ASSIGN_OR_RETURN(Value v, GetNested(is));
          if (!v.is_null()) ftype = v.type();
          col.push_back(present[i] ? std::move(v) : Value::Null());
        }
        break;
      }
      default:
        return Status::IOError("unknown colpack encoding byte");
    }
    fields.push_back({std::move(name), ftype});
  }

  Dataset out(Schema{std::move(fields)});
  for (uint64_t i = 0; i < nrows; i++) {
    Row row;
    row.reserve(ncols);
    for (uint32_t c = 0; c < ncols; c++) row.push_back(std::move(columns[c][i]));
    out.Append(std::move(row));
  }
  return out;
}

}  // namespace cleanm
