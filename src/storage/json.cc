#include "storage/json.h"

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>

namespace cleanm {

namespace {

void SkipWs(const std::string& t, size_t* pos) {
  while (*pos < t.size() && std::isspace(static_cast<unsigned char>(t[*pos]))) {
    ++*pos;
  }
}

/// Exactly four hex digits at t[pos..pos+3] (the payload of a \uXXXX).
Result<uint32_t> ParseHex4(const std::string& t, size_t pos) {
  if (pos + 4 > t.size()) return Status::ParseError("truncated \\u escape");
  uint32_t v = 0;
  for (size_t i = 0; i < 4; i++) {
    const char c = t[pos + i];
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<uint32_t>(c - 'A' + 10);
    } else {
      return Status::ParseError(std::string("bad \\u escape digit '") + c + "'");
    }
  }
  return v;
}

/// Appends a Unicode scalar value to `out` as UTF-8.
void AppendUtf8(uint32_t cp, std::string* out) {
  if (cp < 0x80) {
    *out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    *out += static_cast<char>(0xC0 | (cp >> 6));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    *out += static_cast<char>(0xE0 | (cp >> 12));
    *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    *out += static_cast<char>(0xF0 | (cp >> 18));
    *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

Result<std::string> ParseJsonString(const std::string& t, size_t* pos) {
  if (t[*pos] != '"') return Status::ParseError("expected '\"'");
  ++*pos;
  std::string out;
  while (*pos < t.size()) {
    const char c = t[*pos];
    if (c == '"') {
      ++*pos;
      return out;
    }
    if (c == '\\') {
      ++*pos;
      if (*pos >= t.size()) break;
      const char e = t[*pos];
      switch (e) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case '/': out += '/'; break;
        case '\\': out += '\\'; break;
        case '"': out += '"'; break;
        case 'u': {
          // \uXXXX decodes to UTF-8 — BMP code points directly, astral
          // ones as a UTF-16 surrogate pair (😀 → U+1F600). An
          // unpaired surrogate decodes to U+FFFD (the replacement
          // character), so malformed input can never produce invalid
          // UTF-8. The writer passes non-ASCII bytes through untouched,
          // so decoded strings round-trip.
          CLEANM_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4(t, *pos + 1));
          *pos += 4;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (*pos + 2 < t.size() && t[*pos + 1] == '\\' && t[*pos + 2] == 'u') {
              CLEANM_ASSIGN_OR_RETURN(const uint32_t low, ParseHex4(t, *pos + 3));
              if (low >= 0xDC00 && low <= 0xDFFF) {
                cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                *pos += 6;
              } else {
                cp = 0xFFFD;  // high surrogate followed by a non-low escape
              }
            } else {
              cp = 0xFFFD;  // high surrogate at end / before literal text
            }
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            cp = 0xFFFD;  // low surrogate with no preceding high one
          }
          AppendUtf8(cp, &out);
          break;
        }
        default:
          return Status::ParseError(std::string("bad escape '\\") + e + "'");
      }
      ++*pos;
    } else {
      out += c;
      ++*pos;
    }
  }
  return Status::ParseError("unterminated string");
}

}  // namespace

Result<Value> ParseJsonValue(const std::string& t, size_t* pos) {
  SkipWs(t, pos);
  if (*pos >= t.size()) return Status::ParseError("unexpected end of JSON");
  const char c = t[*pos];
  if (c == '{') {
    ++*pos;
    ValueStruct fields;
    SkipWs(t, pos);
    if (*pos < t.size() && t[*pos] == '}') {
      ++*pos;
      return Value(std::move(fields));
    }
    while (true) {
      SkipWs(t, pos);
      CLEANM_ASSIGN_OR_RETURN(std::string key, ParseJsonString(t, pos));
      SkipWs(t, pos);
      if (*pos >= t.size() || t[*pos] != ':') return Status::ParseError("expected ':'");
      ++*pos;
      CLEANM_ASSIGN_OR_RETURN(Value v, ParseJsonValue(t, pos));
      fields.emplace_back(std::move(key), std::move(v));
      SkipWs(t, pos);
      if (*pos >= t.size()) return Status::ParseError("unterminated object");
      if (t[*pos] == ',') {
        ++*pos;
        continue;
      }
      if (t[*pos] == '}') {
        ++*pos;
        return Value(std::move(fields));
      }
      return Status::ParseError("expected ',' or '}'");
    }
  }
  if (c == '[') {
    ++*pos;
    ValueList items;
    SkipWs(t, pos);
    if (*pos < t.size() && t[*pos] == ']') {
      ++*pos;
      return Value(std::move(items));
    }
    while (true) {
      CLEANM_ASSIGN_OR_RETURN(Value v, ParseJsonValue(t, pos));
      items.push_back(std::move(v));
      SkipWs(t, pos);
      if (*pos >= t.size()) return Status::ParseError("unterminated array");
      if (t[*pos] == ',') {
        ++*pos;
        continue;
      }
      if (t[*pos] == ']') {
        ++*pos;
        return Value(std::move(items));
      }
      return Status::ParseError("expected ',' or ']'");
    }
  }
  if (c == '"') {
    CLEANM_ASSIGN_OR_RETURN(std::string s, ParseJsonString(t, pos));
    return Value(std::move(s));
  }
  if (t.compare(*pos, 4, "true") == 0) {
    *pos += 4;
    return Value(true);
  }
  if (t.compare(*pos, 5, "false") == 0) {
    *pos += 5;
    return Value(false);
  }
  if (t.compare(*pos, 4, "null") == 0) {
    *pos += 4;
    return Value::Null();
  }
  // Number.
  {
    size_t end = *pos;
    bool is_double = false;
    if (end < t.size() && (t[end] == '-' || t[end] == '+')) end++;
    while (end < t.size() &&
           (std::isdigit(static_cast<unsigned char>(t[end])) || t[end] == '.' ||
            t[end] == 'e' || t[end] == 'E' || t[end] == '-' || t[end] == '+')) {
      if (t[end] == '.' || t[end] == 'e' || t[end] == 'E') is_double = true;
      end++;
    }
    if (end == *pos) return Status::ParseError(std::string("unexpected character '") + c + "'");
    const std::string num = t.substr(*pos, end - *pos);
    *pos = end;
    if (is_double) return Value(std::strtod(num.c_str(), nullptr));
    return Value(static_cast<int64_t>(std::strtoll(num.c_str(), nullptr, 10)));
  }
}

Result<Value> ParseJson(const std::string& text) {
  size_t pos = 0;
  CLEANM_ASSIGN_OR_RETURN(Value v, ParseJsonValue(text, &pos));
  SkipWs(text, &pos);
  if (pos != text.size()) return Status::ParseError("trailing characters after JSON value");
  return v;
}

Result<Dataset> ParseJsonLinesString(const std::string& text,
                                     const ReadOptions& options,
                                     ReadReport* report) {
  if (report) *report = ReadReport{};
  std::vector<BadRow> bad_rows;
  auto skip_or_fail = [&](size_t line_no, std::string error) -> Status {
    if (bad_rows.size() < options.max_bad_rows) {
      bad_rows.push_back({line_no, std::move(error)});
      return Status::OK();
    }
    std::string prefix = options.max_bad_rows
                             ? "more than " + std::to_string(options.max_bad_rows) +
                                   " bad rows; "
                             : "";
    return Status::ParseError(prefix + "line " + std::to_string(line_no) + ": " +
                              std::move(error));
  };

  // First pass: parse every line into a struct value, collecting key order.
  std::vector<ValueStruct> objects;
  std::vector<std::string> key_order;
  size_t line_start = 0;
  size_t line_no = 0;  // 1-based once inside the loop
  while (line_start < text.size()) {
    size_t line_end = text.find('\n', line_start);
    if (line_end == std::string::npos) line_end = text.size();
    const std::string line = text.substr(line_start, line_end - line_start);
    line_start = line_end + 1;
    line_no++;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    Result<Value> parsed = ParseJson(line);
    if (!parsed.ok()) {
      CLEANM_RETURN_NOT_OK(skip_or_fail(line_no, parsed.status().message()));
      continue;
    }
    Value v = parsed.MoveValue();
    if (v.type() != ValueType::kStruct) {
      CLEANM_RETURN_NOT_OK(skip_or_fail(line_no, "JSON-lines row is not an object"));
      continue;
    }
    for (const auto& [key, val] : v.AsStruct()) {
      (void)val;
      bool seen = false;
      for (const auto& k : key_order) {
        if (k == key) {
          seen = true;
          break;
        }
      }
      if (!seen) key_order.push_back(key);
    }
    objects.push_back(v.AsStruct());
  }

  // Second pass: align rows to the unified key order; missing keys → null.
  std::vector<Field> fields;
  for (const auto& k : key_order) fields.push_back({k, ValueType::kString});
  Dataset out(Schema{std::move(fields)});
  for (auto& obj : objects) {
    Row row;
    row.reserve(key_order.size());
    for (const auto& k : key_order) {
      Value found = Value::Null();
      for (auto& [key, val] : obj) {
        if (key == k) {
          found = val;
          break;
        }
      }
      row.push_back(std::move(found));
    }
    out.Append(std::move(row));
  }
  // Infer field types from first non-null occurrence.
  for (size_t i = 0; i < out.schema().num_fields(); i++) {
    for (const auto& r : out.rows()) {
      if (!r[i].is_null()) {
        out.mutable_schema()->mutable_field(i)->type = r[i].type();
        break;
      }
    }
  }
  if (report) {
    report->bad_rows = std::move(bad_rows);
    report->rows_loaded = out.num_rows();
  }
  return out;
}

Result<Dataset> ReadJsonLines(const std::string& path, const ReadOptions& options,
                              ReadReport* report) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseJsonLinesString(buf.str(), options, report);
}

Result<PagedTable> ReadJsonLinesPaged(const std::string& path,
                                      const ReadOptions& options,
                                      ReadReport* report) {
  if (!options.page_store) {
    return Status::InvalidArgument(
        "ReadJsonLinesPaged requires ReadOptions::page_store (see ReadOptions)");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  if (report) *report = ReadReport{};
  std::vector<BadRow> bad_rows;
  auto skip_or_fail = [&](size_t line_no, std::string error) -> Status {
    if (bad_rows.size() < options.max_bad_rows) {
      bad_rows.push_back({line_no, std::move(error)});
      return Status::OK();
    }
    std::string prefix = options.max_bad_rows
                             ? "more than " + std::to_string(options.max_bad_rows) +
                                   " bad rows; "
                             : "";
    return Status::ParseError(prefix + "line " + std::to_string(line_no) + ": " +
                              std::move(error));
  };
  auto for_each_line = [&text](const std::function<Status(size_t, const std::string&)>& fn)
      -> Status {
    size_t line_start = 0;
    size_t line_no = 0;  // 1-based once inside the loop
    while (line_start < text.size()) {
      size_t line_end = text.find('\n', line_start);
      if (line_end == std::string::npos) line_end = text.size();
      const std::string line = text.substr(line_start, line_end - line_start);
      line_start = line_end + 1;
      line_no++;
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      CLEANM_RETURN_NOT_OK(fn(line_no, line));
    }
    return Status::OK();
  };

  // Pass 1: unify the object keys. Each parsed object is discarded as soon
  // as its keys are recorded, so no row set accumulates. Malformed lines
  // are ignored here and charged against max_bad_rows on pass 2, which
  // revisits every line with the same tolerance logic as ReadJsonLines.
  std::vector<std::string> key_order;
  CLEANM_RETURN_NOT_OK(
      for_each_line([&](size_t, const std::string& line) -> Status {
        Result<Value> parsed = ParseJson(line);
        if (!parsed.ok() || parsed.value().type() != ValueType::kStruct) {
          return Status::OK();
        }
        for (const auto& [key, val] : parsed.value().AsStruct()) {
          (void)val;
          bool seen = false;
          for (const auto& k : key_order) {
            if (k == key) {
              seen = true;
              break;
            }
          }
          if (!seen) key_order.push_back(key);
        }
        return Status::OK();
      }));

  // Pass 2: re-parse, align each object to the unified key order (missing
  // keys → null), and stream it into the page store; only the builder's
  // open chunk is resident. Column types track the first non-null value.
  PagedTableBuilder builder(options.page_store);
  std::vector<ValueType> col_types(key_order.size(), ValueType::kString);
  std::vector<bool> col_typed(key_order.size(), false);
  size_t rows_loaded = 0;
  CLEANM_RETURN_NOT_OK(
      for_each_line([&](size_t line_no, const std::string& line) -> Status {
        Result<Value> parsed = ParseJson(line);
        if (!parsed.ok()) return skip_or_fail(line_no, parsed.status().message());
        Value v = parsed.MoveValue();
        if (v.type() != ValueType::kStruct) {
          return skip_or_fail(line_no, "JSON-lines row is not an object");
        }
        Row row;
        row.reserve(key_order.size());
        for (size_t i = 0; i < key_order.size(); i++) {
          Value found = Value::Null();
          for (auto& [key, val] : v.AsStruct()) {
            if (key == key_order[i]) {
              found = val;
              break;
            }
          }
          if (!col_typed[i] && !found.is_null()) {
            col_types[i] = found.type();
            col_typed[i] = true;
          }
          row.push_back(std::move(found));
        }
        CLEANM_RETURN_NOT_OK(builder.Append(row));
        rows_loaded++;
        return Status::OK();
      }));

  std::vector<Field> fields;
  for (size_t i = 0; i < key_order.size(); i++) {
    fields.push_back({key_order[i], col_types[i]});
  }
  if (report) {
    report->bad_rows = std::move(bad_rows);
    report->rows_loaded = rows_loaded;
  }
  return builder.Finish(Schema{std::move(fields)});
}

namespace {
void WriteJsonValue(const Value& v, std::ostream& os) {
  if (v.type() == ValueType::kString) {
    os << '"';
    for (char c : v.AsString()) {
      switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        case '\r': os << "\\r"; break;
        default: os << c;
      }
    }
    os << '"';
  } else {
    os << v.ToString();
  }
}
}  // namespace

std::string WriteJson(const Value& value) {
  std::ostringstream os;
  WriteJsonValue(value, os);
  return os.str();
}

Status WriteJsonLines(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot create '" + path + "'");
  for (const auto& row : dataset.rows()) {
    out << '{';
    for (size_t i = 0; i < row.size(); i++) {
      if (i) out << ',';
      out << '"' << dataset.schema().field(i).name << "\":";
      if (row[i].type() == ValueType::kList || row[i].type() == ValueType::kStruct) {
        out << row[i].ToString();
      } else {
        WriteJsonValue(row[i], out);
      }
    }
    out << "}\n";
  }
  if (!out) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

}  // namespace cleanm
