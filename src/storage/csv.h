// CSV reader/writer (RFC-4180-style quoting).
//
// CSV is the "flat text" access path of the evaluation (Figures 6a, 7).
// The reader can either infer column types from the data or apply a caller
// schema; list/struct values are not representable — writing a dataset with
// nested columns is an error (flatten first), which is exactly the
// inconvenience the paper attributes to relational formats.
#pragma once

#include <string>

#include "common/status.h"
#include "storage/dataset.h"
#include "storage/pagestore/paged_table.h"
#include "storage/read_options.h"

namespace cleanm {

struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
  /// When true, the reader parses numeric-looking fields into kInt/kDouble;
  /// otherwise everything is kString.
  bool infer_types = true;
  /// Bad-row tolerance (read.max_bad_rows): records with the wrong arity
  /// or an unterminated quoted field are skipped and recorded (with their
  /// line number) instead of failing the load. Default strict.
  ReadOptions read;
};

/// Parses a CSV file into a Dataset. Column names come from the header row
/// (or are synthesized as f0..fn when `has_header` is false). When
/// `report` is non-null it is filled with the rows skipped under
/// `options.read.max_bad_rows` (empty in strict mode).
Result<Dataset> ReadCsv(const std::string& path, const CsvOptions& options = {},
                        ReadReport* report = nullptr);

/// Parses CSV text held in memory (used by tests).
Result<Dataset> ParseCsvString(const std::string& text, const CsvOptions& options = {},
                               ReadReport* report = nullptr);

/// Out-of-core ingestion: parses the file and streams each accepted row
/// into `options.read.page_store` a page-sized chunk at a time — the
/// parsed rows are never all resident at once (only the raw text and the
/// builder's open chunk are). Schema inference, bad-row tolerance, and
/// ReadReport contents match ReadCsv exactly. Fails with InvalidArgument
/// when no page store is supplied.
Result<PagedTable> ReadCsvPaged(const std::string& path,
                                const CsvOptions& options = {},
                                ReadReport* report = nullptr);

/// Serializes a flat dataset to a CSV file.
Status WriteCsv(const Dataset& dataset, const std::string& path,
                const CsvOptions& options = {});

}  // namespace cleanm
