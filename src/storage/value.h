// Dynamic value model for heterogeneous data.
//
// CleanM operates over relational *and* nested data (JSON/XML, Section 3).
// Value is the single runtime representation used across the storage layer,
// the execution engine, and the expression evaluator: scalars plus nested
// lists and (name, value) structs, so a JSON document and a CSV row flow
// through identical operator code.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/hash.h"
#include "common/status.h"

namespace cleanm {

class Value;

/// Nested collection payload (lists / bags).
using ValueList = std::vector<Value>;
/// Nested record payload: ordered (field name, value) pairs.
using ValueStruct = std::vector<std::pair<std::string, Value>>;

enum class ValueType : uint8_t {
  kNull = 0,
  kBool,
  kInt,
  kDouble,
  kString,
  kList,
  kStruct,
};

const char* ValueTypeName(ValueType t);

/// Thrown when a value is read as the wrong type — e.g. a cleaning rule
/// calling ToDouble on a string cell. Deliberately an ordinary catchable
/// exception (not an abort): on the pipelined path the executor's
/// poison-row quarantine records the offending row and skips it, and the
/// session layer converts an uncaught escape into Status::Internal.
class ValueCoercionError : public std::runtime_error {
 public:
  ValueCoercionError(ValueType actual, const char* wanted);
};

/// \brief Tagged dynamic value: null, bool, int64, double, string, list,
/// or struct. Lists and structs are shared_ptr-backed so copying rows
/// through shuffles is cheap.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(bool b) : v_(b) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(const char* s) : v_(std::string(s)) {}
  explicit Value(ValueList l) : v_(std::make_shared<ValueList>(std::move(l))) {}
  explicit Value(ValueStruct s) : v_(std::make_shared<ValueStruct>(std::move(s))) {}

  static Value Null() { return Value(); }

  ValueType type() const { return static_cast<ValueType>(v_.index()); }
  bool is_null() const { return type() == ValueType::kNull; }

  // Checked accessors: a type mismatch throws ValueCoercionError with both
  // type names instead of a bare std::bad_variant_access (which aborted the
  // process when it escaped a worker thread before the exception capture).
  bool AsBool() const { Expect(ValueType::kBool, "bool"); return std::get<bool>(v_); }
  int64_t AsInt() const { Expect(ValueType::kInt, "int"); return std::get<int64_t>(v_); }
  double AsDouble() const {
    Expect(ValueType::kDouble, "double");
    return std::get<double>(v_);
  }
  const std::string& AsString() const {
    Expect(ValueType::kString, "string");
    return std::get<std::string>(v_);
  }
  const ValueList& AsList() const {
    Expect(ValueType::kList, "list");
    return *std::get<std::shared_ptr<ValueList>>(v_);
  }
  const ValueStruct& AsStruct() const {
    Expect(ValueType::kStruct, "struct");
    return *std::get<std::shared_ptr<ValueStruct>>(v_);
  }
  ValueList& MutableList() {
    Expect(ValueType::kList, "list");
    return *std::get<std::shared_ptr<ValueList>>(v_);
  }
  ValueStruct& MutableStruct() {
    Expect(ValueType::kStruct, "struct");
    return *std::get<std::shared_ptr<ValueStruct>>(v_);
  }

  /// Numeric coercion: ints and doubles read as double; anything else
  /// throws ValueCoercionError (quarantinable on the pipelined path).
  double ToDouble() const {
    if (type() == ValueType::kInt) return static_cast<double>(std::get<int64_t>(v_));
    Expect(ValueType::kDouble, "numeric");
    return std::get<double>(v_);
  }

  bool is_numeric() const {
    return type() == ValueType::kInt || type() == ValueType::kDouble;
  }

  /// Looks up a struct field by name; KeyError if absent.
  Result<Value> GetField(const std::string& name) const;

  /// Deep structural equality (int 1 != double 1.0; null == null).
  bool Equals(const Value& other) const;

  /// Total order for sorting: null < bool < numeric < string < list < struct;
  /// ints and doubles compare numerically against each other.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  /// Deterministic deep hash consistent with Equals.
  uint64_t Hash() const;

  /// Deep copy: nested lists/structs get fresh storage. Needed whenever a
  /// value will be mutated in place (Value copies share nested storage).
  Value DeepCopy() const;

  /// Approximate in-memory footprint in bytes (shuffle-traffic accounting).
  size_t ByteSize() const;

  /// Renders JSON-ish text: strings quoted inside containers, bare at top.
  std::string ToString() const;

  bool operator==(const Value& other) const { return Equals(other); }

 private:
  void Expect(ValueType want, const char* wanted) const {
    if (type() != want) throw ValueCoercionError(type(), wanted);
  }

  std::variant<std::monostate, bool, int64_t, double, std::string,
               std::shared_ptr<ValueList>, std::shared_ptr<ValueStruct>>
      v_;
};

/// A row is a flat vector of values, positionally aligned with a Schema.
using Row = std::vector<Value>;

/// Deep hash of a full row.
uint64_t HashRow(const Row& row);

/// Approximate row footprint in bytes.
size_t RowByteSize(const Row& row);

}  // namespace cleanm
