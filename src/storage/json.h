// JSON-lines reader/writer for nested data.
//
// The nested access path of Figure 7: one JSON object per line, arrays map
// to kList values, objects to kStruct. The top-level objects of a file form
// the dataset's rows; the union of their keys forms the schema.
#pragma once

#include <string>

#include "common/status.h"
#include "storage/dataset.h"
#include "storage/pagestore/paged_table.h"
#include "storage/read_options.h"

namespace cleanm {

/// Parses a single JSON value from `text` starting at `*pos`.
Result<Value> ParseJsonValue(const std::string& text, size_t* pos);

/// Parses a whole string holding one JSON value.
Result<Value> ParseJson(const std::string& text);

/// Reads a JSON-lines file (one object per line) into a Dataset. Under
/// `options.max_bad_rows`, lines that fail to parse (bad escapes, invalid
/// \uXXXX digits, truncated objects) or are not objects are skipped and
/// recorded with their line number in `report` instead of failing the load.
Result<Dataset> ReadJsonLines(const std::string& path,
                              const ReadOptions& options = {},
                              ReadReport* report = nullptr);

/// Parses JSON-lines text held in memory (used by tests).
Result<Dataset> ParseJsonLinesString(const std::string& text,
                                     const ReadOptions& options = {},
                                     ReadReport* report = nullptr);

/// Out-of-core ingestion: reads the file in two streaming passes — one to
/// unify the object keys into the schema, one to align each object to that
/// key order and append it to `options.page_store` a page-sized chunk at a
/// time — so the parsed rows are never all resident at once. Bad-row
/// tolerance and ReadReport contents match ReadJsonLines exactly. Fails
/// with InvalidArgument when no page store is supplied.
Result<PagedTable> ReadJsonLinesPaged(const std::string& path,
                                      const ReadOptions& options = {},
                                      ReadReport* report = nullptr);

/// Serializes one Value as JSON text (strings escaped). Non-ASCII bytes
/// pass through raw, so UTF-8 produced by ParseJson's \uXXXX decoding
/// round-trips byte-identically.
std::string WriteJson(const Value& value);

/// Writes a dataset as JSON lines; nested values serialize naturally.
Status WriteJsonLines(const Dataset& dataset, const std::string& path);

}  // namespace cleanm
