// Schema and Dataset: the in-memory table representation shared by the
// storage readers and the execution engine.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/value.h"

namespace cleanm {

/// \brief A named, typed column. Nested columns carry kList/kStruct type;
/// their element structure is dynamic (carried by the values themselves),
/// matching the raw-data philosophy of the RAW/CleanDB substrate.
struct Field {
  std::string name;
  ValueType type = ValueType::kString;
};

/// \brief Ordered field list with name→index resolution.
class Schema {
 public:
  Schema() = default;
  Schema(std::initializer_list<Field> fields) : fields_(fields) {}
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  Field* mutable_field(size_t i) { return &fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field named `name`, or KeyError.
  Result<size_t> IndexOf(const std::string& name) const;

  bool HasField(const std::string& name) const;

  void AddField(Field f) { fields_.push_back(std::move(f)); }

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

/// \brief A schema plus a bag of rows. Row order is not semantically
/// meaningful (bag semantics, as in the monoid calculus).
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(Schema schema) : schema_(std::move(schema)) {}
  Dataset(Schema schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const Schema& schema() const { return schema_; }
  Schema* mutable_schema() { return &schema_; }
  size_t num_rows() const { return rows_.size(); }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& mutable_rows() { return rows_; }
  const Row& row(size_t i) const { return rows_[i]; }

  void Append(Row row) { rows_.push_back(std::move(row)); }

  /// Validates that every row has one value per schema field.
  Status Validate() const;

  /// Approximate footprint in bytes.
  size_t ByteSize() const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

/// \brief Flattens a dataset that has one list-typed column: each list
/// element becomes its own output row (the relational-system practice the
/// paper contrasts against in Figure 7; e.g. one row per (publication,
/// author) pair instead of a nested author list).
Result<Dataset> FlattenListColumn(const Dataset& in, const std::string& column);

}  // namespace cleanm
