// Algebra-level rewrites (paper Section 5, "Optimizations at the algebra
// level"; Figure 1).
//
// Intra-plan rules, applied to fixpoint:
//   A1  Select(Select(X, p1), p2)          → Select(X, p1 ∧ p2)
//   A2  Select(Join(L, R), p) with vars(p) ⊆ one side → push below the join
//   A3  Select(Join(L, R), a = b) spanning both sides → hash equi-join
//
// Inter-plan rule (the Plan BC coalescing of Figure 1):
//   A4  Two Nest plans over structurally identical inputs with identical
//       GroupSpecs merge into one Nest computing the union of their
//       aggregations; each original consumer becomes a Select applying its
//       own `having` over the merged output. One grouping pass instead of N.
//
// Shared-scan detection (the DAG of Figure 1's overall plan) is also
// reported here; the physical layer uses it to scan each table once.
#pragma once

#include <vector>

#include "algebra/algebra.h"

namespace cleanm {

struct RewriteStats {
  int selects_fused = 0;
  int selects_pushed = 0;
  int equi_joins_detected = 0;
  int nests_coalesced = 0;
};

/// Applies the intra-plan rules (A1–A3) to fixpoint. Returns a fresh plan.
AlgOpPtr RewritePlan(const AlgOpPtr& plan, RewriteStats* stats = nullptr);

/// \brief Result of coalescing a set of query roots (A4).
///
/// `roots[i]` is the rewritten plan for input plan i. Plans that merged now
/// share a single Nest node (by pointer), so the executor evaluates the
/// grouping once and fans its output out to every consumer.
struct CoalescedPlans {
  std::vector<AlgOpPtr> roots;
  int groups_merged = 0;
};

/// Coalesces the Nest stages of multiple plans belonging to one query.
/// Plans whose Nest inputs and group specs match (structurally) are rewired
/// onto one shared Nest carrying the union of the aggregations; each root
/// keeps its own `having` as a Select above the shared node.
CoalescedPlans CoalesceNests(const std::vector<AlgOpPtr>& plans,
                             RewriteStats* stats = nullptr);

/// Tables scanned by more than one of the given plans (shared-scan
/// opportunities for the physical layer's scan cache).
std::vector<std::string> SharedScanTables(const std::vector<AlgOpPtr>& plans);

}  // namespace cleanm
