// Driver-side reference evaluator for algebra plans.
//
// Single-threaded, nested-loop executable semantics for the nested
// relational algebra. The distributed physical plans (src/physical) must
// produce the same results; the integration tests compare the two.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "algebra/algebra.h"
#include "common/status.h"
#include "functions/function_registry.h"
#include "storage/dataset.h"

namespace cleanm {

class PagedTable;
class DeltaLog;

/// Name → table binding used to resolve Scan operators.
struct Catalog {
  std::map<std::string, const Dataset*> tables;
  /// Page-backed copies of registered tables (may be empty): when a table
  /// has one and the executor carries a buffer pool, the physical scan
  /// streams chunks through the pool instead of walking the resident
  /// Dataset. The reference evaluator ignores this map.
  std::map<std::string, const PagedTable*> paged;
  /// Monotonic per-table versions, bumped by the owning session on every
  /// (re-)registration *and* every mutation (AppendRows / UpdateRows /
  /// DeleteRows). The physical layer keys its partition cache on them; 0
  /// means the owner does not track generations.
  std::map<std::string, uint64_t> generations;
  /// Major registration epoch per table: bumped only by RegisterTable /
  /// UnregisterTable (the invalidating events), never by mutations.
  std::map<std::string, uint64_t> majors;
  /// Mutations since the table's last registration (reset to 0 by
  /// RegisterTable). generations[t] - minors[t] is the version the current
  /// major epoch started at.
  std::map<std::string, uint64_t> minors;
  /// Mutation delta logs of the current major epoch (absent or empty when
  /// the table has not been mutated since registration).
  std::map<std::string, const DeltaLog*> deltas;
  /// The dataset as registered at the current major epoch's start — the
  /// base the incremental validator bootstraps from (the effective,
  /// mutation-applied dataset lives in `tables`).
  std::map<std::string, const Dataset*> bases;
  /// Session function registry (may be null): plans referencing registered
  /// scalar/aggregate/repair functions resolve against it in both the
  /// reference evaluator and the physical executor.
  const FunctionRegistry* functions = nullptr;

  Catalog() = default;
  /// Tables-only form (the common shape in tests and baselines): all
  /// generations default to 0.
  Catalog(std::map<std::string, const Dataset*> t)  // NOLINT: implicit by design
      : tables(std::move(t)) {}

  Result<const Dataset*> Find(const std::string& name) const {
    auto it = tables.find(name);
    if (it == tables.end()) return Status::KeyError("unknown table '" + name + "'");
    return it->second;
  }

  uint64_t GenerationOf(const std::string& name) const {
    auto it = generations.find(name);
    return it == generations.end() ? 0 : it->second;
  }

  /// The paged copy of `name`, or null when the table is resident-only.
  const PagedTable* FindPaged(const std::string& name) const {
    auto it = paged.find(name);
    return it == paged.end() ? nullptr : it->second;
  }

  uint64_t MajorOf(const std::string& name) const {
    auto it = majors.find(name);
    return it == majors.end() ? 0 : it->second;
  }

  uint64_t MinorOf(const std::string& name) const {
    auto it = minors.find(name);
    return it == minors.end() ? 0 : it->second;
  }

  /// The mutation delta log of `name`, or null when it has none.
  const DeltaLog* FindDelta(const std::string& name) const {
    auto it = deltas.find(name);
    return it == deltas.end() ? nullptr : it->second;
  }

  /// The base (as-registered) dataset of `name`, or null when untracked.
  const Dataset* FindBase(const std::string& name) const {
    auto it = bases.find(name);
    return it == bases.end() ? nullptr : it->second;
  }
};

/// Converts a dataset row to a record Value using the schema's field names.
Value RowToRecord(const Schema& schema, const Row& row);

/// Evaluates a plan whose root is anything but Reduce; returns the bag of
/// output tuples, each a struct Value mapping bound variables to records.
Result<std::vector<Value>> EvalPlanTuples(const AlgOpPtr& plan, const Catalog& catalog);

/// Evaluates a full plan. A Reduce root folds to a single Value; any other
/// root returns the tuple bag as a list Value.
Result<Value> EvalPlan(const AlgOpPtr& plan, const Catalog& catalog);

/// All tuple variables a plan binds (scan vars, unnest vars, nest outputs).
std::vector<std::string> CollectVars(const AlgOpPtr& plan);

}  // namespace cleanm
