#include "algebra/algebra_eval.h"

#include <algorithm>
#include <unordered_map>

#include "monoid/eval.h"

namespace cleanm {

Value RowToRecord(const Schema& schema, const Row& row) {
  ValueStruct fields;
  fields.reserve(row.size());
  for (size_t i = 0; i < row.size(); i++) {
    fields.emplace_back(schema.field(i).name, row[i]);
  }
  return Value(std::move(fields));
}

std::vector<std::string> CollectVars(const AlgOpPtr& plan) {
  std::vector<std::string> vars;
  if (!plan) return vars;
  switch (plan->kind) {
    case AlgKind::kScan:
      vars.push_back(plan->var);
      return vars;
    case AlgKind::kNest: {
      vars.push_back(plan->key_name);
      for (const auto& agg : plan->aggs) vars.push_back(agg.name);
      return vars;
    }
    case AlgKind::kUnnest:
    case AlgKind::kOuterUnnest: {
      vars = CollectVars(plan->input);
      vars.push_back(plan->path_var);
      return vars;
    }
    case AlgKind::kJoin:
    case AlgKind::kOuterJoin: {
      vars = CollectVars(plan->input);
      auto rv = CollectVars(plan->right);
      vars.insert(vars.end(), rv.begin(), rv.end());
      return vars;
    }
    default:
      return CollectVars(plan->input);
  }
}

namespace {

/// Tuple = struct Value {var → record}. Builds an Env for expression eval.
Env TupleToEnv(const Value& tuple) {
  Env env;
  for (const auto& [var, val] : tuple.AsStruct()) env[var] = val;
  return env;
}

Value MergeTuples(const Value& a, const Value& b) {
  ValueStruct merged = a.AsStruct();
  const auto& bs = b.AsStruct();
  merged.insert(merged.end(), bs.begin(), bs.end());
  return Value(std::move(merged));
}

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const { return a.Equals(b); }
};

/// Computes the group keys of a tuple under a GroupSpec. Exact grouping
/// yields one key; grouping monoids may yield several.
Result<std::vector<Value>> GroupKeys(const GroupSpec& group, const Env& env,
                                     const EvalContext& ctx) {
  CLEANM_ASSIGN_OR_RETURN(Value term, EvalExpr(group.term, env, ctx));
  switch (group.algo) {
    case FilteringAlgo::kExactKey:
      return std::vector<Value>{term};
    case FilteringAlgo::kTokenFiltering: {
      if (term.type() != ValueType::kString) {
        return Status::TypeError("token filtering requires a string term");
      }
      auto grams = QGrams(term.AsString(), group.q);
      std::sort(grams.begin(), grams.end());
      grams.erase(std::unique(grams.begin(), grams.end()), grams.end());
      std::vector<Value> keys;
      keys.reserve(grams.size());
      for (auto& g : grams) keys.push_back(Value(std::move(g)));
      return keys;
    }
    case FilteringAlgo::kKMeans: {
      if (term.type() != ValueType::kString) {
        return Status::TypeError("k-means grouping requires a string term");
      }
      if (group.centers.empty()) {
        return Status::InvalidArgument(
            "k-means Nest evaluated without sampled centers; the planner "
            "must fill GroupSpec::centers first");
      }
      SinglePassKMeans km(group.centers.size(), group.delta, /*seed=*/0);
      auto assignments = km.Assign({term.AsString()}, group.centers);
      std::vector<Value> keys;
      for (const auto& a : assignments) keys.push_back(Value(a.key));
      return keys;
    }
  }
  return Status::Internal("unhandled grouping algo");
}

/// Builds the expression-evaluation context from the catalog: registered
/// scalar/repair functions resolve in call position (strictly — unlike the
/// physical path, errors propagate, which is what the cross-check tests
/// want from a reference semantics).
EvalContext MakeEvalContext(const Catalog& catalog) {
  EvalContext ctx;
  if (catalog.functions != nullptr) {
    const FunctionRegistry* functions = catalog.functions;
    ctx.call_fallback = [functions](const std::string& name,
                                    const std::vector<Value>& args) -> Result<Value> {
      if (const ScalarFunction* fn = functions->FindScalar(name)) return fn->fn(args);
      return Status::KeyError("unknown function '" + name + "'");
    };
  }
  return ctx;
}

Result<std::vector<Value>> Eval(const AlgOpPtr& plan, const Catalog& catalog,
                                const EvalContext& ctx) {
  if (!plan) return Status::Internal("null plan");
  switch (plan->kind) {
    case AlgKind::kScan: {
      CLEANM_ASSIGN_OR_RETURN(const Dataset* table, catalog.Find(plan->table));
      std::vector<Value> out;
      out.reserve(table->num_rows());
      for (const auto& row : table->rows()) {
        out.push_back(Value(ValueStruct{{plan->var, RowToRecord(table->schema(), row)}}));
      }
      return out;
    }
    case AlgKind::kSelect: {
      CLEANM_ASSIGN_OR_RETURN(std::vector<Value> in, Eval(plan->input, catalog, ctx));
      std::vector<Value> out;
      for (auto& tuple : in) {
        CLEANM_ASSIGN_OR_RETURN(Value p, EvalExpr(plan->pred, TupleToEnv(tuple), ctx));
        if (p.type() != ValueType::kBool) {
          return Status::TypeError("selection predicate is not boolean");
        }
        if (p.AsBool()) out.push_back(std::move(tuple));
      }
      return out;
    }
    case AlgKind::kJoin:
    case AlgKind::kOuterJoin: {
      CLEANM_ASSIGN_OR_RETURN(std::vector<Value> left, Eval(plan->input, catalog, ctx));
      CLEANM_ASSIGN_OR_RETURN(std::vector<Value> right, Eval(plan->right, catalog, ctx));
      const bool outer = plan->kind == AlgKind::kOuterJoin;
      const auto right_vars = CollectVars(plan->right);
      std::vector<Value> out;
      for (const auto& l : left) {
        const Env lenv = TupleToEnv(l);
        bool matched = false;
        for (const auto& r : right) {
          Env env = lenv;
          for (const auto& [var, val] : r.AsStruct()) env[var] = val;
          bool ok = true;
          if (plan->left_key) {
            CLEANM_ASSIGN_OR_RETURN(Value lk, EvalExpr(plan->left_key, lenv, ctx));
            CLEANM_ASSIGN_OR_RETURN(Value rk, EvalExpr(plan->right_key, TupleToEnv(r), ctx));
            ok = lk.Equals(rk);
          }
          if (ok && plan->pred) {
            CLEANM_ASSIGN_OR_RETURN(Value p, EvalExpr(plan->pred, env, ctx));
            ok = p.type() == ValueType::kBool && p.AsBool();
          }
          if (ok) {
            matched = true;
            out.push_back(MergeTuples(l, r));
          }
        }
        if (outer && !matched) {
          ValueStruct padded = l.AsStruct();
          for (const auto& var : right_vars) padded.emplace_back(var, Value::Null());
          out.push_back(Value(std::move(padded)));
        }
      }
      return out;
    }
    case AlgKind::kUnnest:
    case AlgKind::kOuterUnnest: {
      CLEANM_ASSIGN_OR_RETURN(std::vector<Value> in, Eval(plan->input, catalog, ctx));
      const bool outer = plan->kind == AlgKind::kOuterUnnest;
      std::vector<Value> out;
      for (const auto& tuple : in) {
        CLEANM_ASSIGN_OR_RETURN(Value coll, EvalExpr(plan->path, TupleToEnv(tuple), ctx));
        if (coll.is_null() || (coll.type() == ValueType::kList && coll.AsList().empty())) {
          if (outer) {
            ValueStruct padded = tuple.AsStruct();
            padded.emplace_back(plan->path_var, Value::Null());
            out.push_back(Value(std::move(padded)));
          }
          continue;
        }
        if (coll.type() != ValueType::kList) {
          // A scalar in a nested position behaves as a singleton (common in
          // XML data where one author is scalar, many are a list).
          ValueStruct padded = tuple.AsStruct();
          padded.emplace_back(plan->path_var, coll);
          out.push_back(Value(std::move(padded)));
          continue;
        }
        for (const auto& element : coll.AsList()) {
          ValueStruct padded = tuple.AsStruct();
          padded.emplace_back(plan->path_var, element);
          out.push_back(Value(std::move(padded)));
        }
      }
      return out;
    }
    case AlgKind::kNest: {
      CLEANM_ASSIGN_OR_RETURN(std::vector<Value> in, Eval(plan->input, catalog, ctx));
      // Group: key → per-aggregation accumulator.
      struct GroupAccs {
        std::vector<Value> accs;
      };
      std::vector<const Monoid*> monoids;
      std::vector<const AggregateFunction*> udfs;
      for (const auto& agg : plan->aggs) {
        const AggregateFunction* udf = nullptr;
        CLEANM_ASSIGN_OR_RETURN(
            const Monoid* m, ResolveAggregateMonoid(catalog.functions, agg.monoid, &udf));
        monoids.push_back(m);
        udfs.push_back(udf);
      }
      std::unordered_map<Value, GroupAccs, ValueHash, ValueEq> groups;
      for (const auto& tuple : in) {
        const Env env = TupleToEnv(tuple);
        CLEANM_ASSIGN_OR_RETURN(std::vector<Value> keys, GroupKeys(plan->group, env, ctx));
        for (const auto& key : keys) {
          auto it = groups.find(key);
          if (it == groups.end()) {
            GroupAccs fresh;
            for (const auto* m : monoids) fresh.accs.push_back(m->zero());
            it = groups.emplace(key, std::move(fresh)).first;
          }
          for (size_t a = 0; a < plan->aggs.size(); a++) {
            CLEANM_ASSIGN_OR_RETURN(Value v, EvalExpr(plan->aggs[a].expr, env, ctx));
            it->second.accs[a] = monoids[a]->Accumulate(std::move(it->second.accs[a]), v);
          }
        }
      }
      std::vector<Value> out;
      for (auto& [key, group] : groups) {
        ValueStruct tuple;
        tuple.emplace_back(plan->key_name, key);
        for (size_t a = 0; a < plan->aggs.size(); a++) {
          if (udfs[a] && udfs[a]->finalize) {
            // Strict reference semantics: a failing UDF finalize is an
            // error, not a null.
            CLEANM_ASSIGN_OR_RETURN(group.accs[a],
                                    udfs[a]->finalize({group.accs[a]}));
          }
          tuple.emplace_back(plan->aggs[a].name, std::move(group.accs[a]));
        }
        Value result(std::move(tuple));
        if (plan->having) {
          CLEANM_ASSIGN_OR_RETURN(Value h, EvalExpr(plan->having, TupleToEnv(result), ctx));
          if (h.type() != ValueType::kBool) {
            return Status::TypeError("having predicate is not boolean");
          }
          if (!h.AsBool()) continue;
        }
        out.push_back(std::move(result));
      }
      return out;
    }
    case AlgKind::kReduce:
      return Status::Internal("Reduce must be the plan root; use EvalPlan");
  }
  return Status::Internal("unhandled algebra kind");
}

}  // namespace

Result<std::vector<Value>> EvalPlanTuples(const AlgOpPtr& plan, const Catalog& catalog) {
  if (plan && plan->kind == AlgKind::kReduce) {
    return Status::InvalidArgument("EvalPlanTuples on a Reduce-rooted plan");
  }
  return Eval(plan, catalog, MakeEvalContext(catalog));
}

Result<Value> EvalPlan(const AlgOpPtr& plan, const Catalog& catalog) {
  if (!plan) return Status::Internal("null plan");
  const EvalContext ctx = MakeEvalContext(catalog);
  if (plan->kind != AlgKind::kReduce) {
    CLEANM_ASSIGN_OR_RETURN(std::vector<Value> tuples, Eval(plan, catalog, ctx));
    return Value(ValueList(tuples.begin(), tuples.end()));
  }
  const AggregateFunction* udf = nullptr;
  CLEANM_ASSIGN_OR_RETURN(const Monoid* monoid,
                          ResolveAggregateMonoid(catalog.functions, plan->monoid, &udf));
  CLEANM_ASSIGN_OR_RETURN(std::vector<Value> tuples, Eval(plan->input, catalog, ctx));
  Value acc = monoid->zero();
  for (const auto& tuple : tuples) {
    CLEANM_ASSIGN_OR_RETURN(Value head, EvalExpr(plan->head, TupleToEnv(tuple), ctx));
    acc = monoid->Accumulate(std::move(acc), head);
  }
  if (udf && udf->finalize) return udf->finalize({acc});
  return acc;
}

}  // namespace cleanm
