#include "algebra/translate.h"

#include <set>

namespace cleanm {

namespace {

/// Is every free variable of `e` among `bound`?
bool CoveredBy(const ExprPtr& e, const std::set<std::string>& bound) {
  for (const auto& v : FreeVars(e)) {
    if (!bound.count(v)) return false;
  }
  return true;
}

/// Does the path expression root at one of the bound variables (making the
/// generator an Unnest rather than a Scan)?
bool IsPathOverBound(const ExprPtr& e, const std::set<std::string>& bound) {
  const Expr* cur = e.get();
  while (cur) {
    if (cur->kind == ExprKind::kVar) return bound.count(cur->name) > 0;
    if (cur->kind == ExprKind::kField) {
      cur = cur->child.get();
      continue;
    }
    if (cur->kind == ExprKind::kCall) {
      // e.g. tokens(c.name, 2): a computed collection over bound variables.
      for (const auto& a : cur->args) {
        if (IsPathOverBound(a, bound)) return true;
      }
      return false;
    }
    return false;
  }
  return false;
}

}  // namespace

Result<AlgOpPtr> TranslateComprehension(const ExprPtr& comprehension) {
  if (!comprehension || comprehension->kind != ExprKind::kComprehension) {
    return Status::InvalidArgument("translator expects a comprehension");
  }
  const auto& comp = comprehension->comp;

  AlgOpPtr plan;
  std::set<std::string> bound;

  for (const auto& q : comp.qualifiers) {
    switch (q.kind) {
      case Qualifier::Kind::kBinding:
        return Status::InvalidArgument(
            "comprehension still contains a binding; normalize before translating");
      case Qualifier::Kind::kGenerator: {
        if (q.expr->kind == ExprKind::kVar && !bound.count(q.expr->name)) {
          // Base table scan.
          AlgOpPtr scan = Scan(q.expr->name, q.var);
          plan = plan ? JoinOp(std::move(plan), std::move(scan), nullptr)
                      : std::move(scan);
        } else if (plan && IsPathOverBound(q.expr, bound)) {
          plan = UnnestOp(std::move(plan), q.expr, q.var);
        } else {
          return Status::NotImplemented(
              "unsupported generator source in translation: " + q.expr->ToString());
        }
        bound.insert(q.var);
        break;
      }
      case Qualifier::Kind::kPredicate: {
        if (!plan) {
          // A predicate before any generator: constant under normalization;
          // keep it as a degenerate selection over the first input later.
          return Status::InvalidArgument(
              "predicate before any generator; normalize first");
        }
        if (!CoveredBy(q.expr, bound)) {
          return Status::InvalidArgument("predicate references unbound variable: " +
                                         q.expr->ToString());
        }
        plan = SelectOp(std::move(plan), q.expr);
        break;
      }
    }
  }
  if (!plan) return Status::InvalidArgument("comprehension has no generators");
  return ReduceOp(std::move(plan), comp.monoid, comp.head);
}

}  // namespace cleanm
