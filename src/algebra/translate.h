// Comprehension → nested relational algebra translation (Section 5).
//
// Implements the Fegaras-Maier translation for the comprehension shapes
// CleanM's desugarer produces after normalization:
//
//   ⊕{ head | v1 <- T1, ..., vn <- Tn, p1, ..., pk }
//
// where each generator source is either a base table (→ Scan / Join) or a
// path over an already-bound variable (→ Unnest). Predicates become Select
// operators placed as early as possible; the rewriter then turns
// join-spanning equality selections into hash equi-joins and the head/monoid
// pair becomes the root Reduce. Grouping (Nest) plans are built by the
// cleaning-operator desugarer directly, since they arise from the fixed
// comprehension templates of Section 4.4.
#pragma once

#include "algebra/algebra.h"
#include "common/status.h"

namespace cleanm {

/// Translates a normalized comprehension into an algebra plan rooted at a
/// Reduce. Table references are Var expressions whose names are resolved
/// against the catalog at execution time. Errors on shapes outside the
/// supported fragment (e.g. leftover bindings — run Normalize first).
Result<AlgOpPtr> TranslateComprehension(const ExprPtr& comprehension);

}  // namespace cleanm
