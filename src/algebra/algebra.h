// Nested relational algebra (paper Section 5, Table 1).
//
// The second abstraction level: normalized monoid comprehensions translate
// into this algebra, whose operators resemble relational ones but handle
// nested data and monoid-typed aggregation explicitly:
//
//   Scan            base collection, binds a tuple variable
//   Select   σp     filter
//   Join     ⋈p     inner join (hash form when an equi-key pair is present,
//                   theta form otherwise)
//   OuterJoin ⟕p    left outer join (null-extends unmatched left tuples)
//   Unnest   μ      iterates a nested collection field, binding its elements
//   OuterUnnest μ̄   like Unnest but keeps tuples with empty collections
//   Reduce   Δ⊕/e   folds e over the input with monoid ⊕ (the final output)
//   Nest     Γ⊕/e/f groups by f and folds one or more aggregations per
//                   group; `having` filters groups. The grouping key can be
//                   an exact expression or a *grouping monoid* (token
//                   filtering / k-means), in which case one tuple may join
//                   several groups — the algebra-level form of the pruning
//                   monoids of Section 4.3.
//
// Tuples at this level are variable environments: a Value struct mapping
// each bound variable to its record. tests/algebra_test.cc checks the
// driver-side evaluator (algebra_eval.h) against the comprehension
// interpreter.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/filtering.h"
#include "monoid/expr.h"

namespace cleanm {

enum class AlgKind {
  kScan,
  kSelect,
  kJoin,
  kOuterJoin,
  kUnnest,
  kOuterUnnest,
  kReduce,
  kNest,
};

const char* AlgKindName(AlgKind kind);

/// How a Nest derives group keys from a tuple.
struct GroupSpec {
  /// Key derivation: exact expression value, or a grouping monoid.
  FilteringAlgo algo = FilteringAlgo::kExactKey;
  /// The term the key derives from (e.g. c.address).
  ExprPtr term;
  /// Token filtering parameter.
  size_t q = 2;
  /// K-means parameters; `centers` is filled by the planner (sampled from a
  /// dictionary or the data) before evaluation.
  size_t k = 10;
  double delta = 1.0;
  std::vector<std::string> centers;
};

/// One aggregation computed by a Nest: fold `expr` over the group members
/// with `monoid`, exposing the result as field `name`.
struct NestAgg {
  std::string name;
  std::string monoid;
  ExprPtr expr;
};

struct AlgOp;
using AlgOpPtr = std::shared_ptr<AlgOp>;

/// \brief One algebra operator. Tagged union, like Expr.
struct AlgOp {
  AlgKind kind;

  // kScan
  std::string table;  ///< name resolved against a Catalog at execution time
  std::string var;    ///< tuple variable the scan binds

  AlgOpPtr input;  ///< unary input / join left
  AlgOpPtr right;  ///< join right

  ExprPtr pred;  ///< kSelect / join predicate (may be null for cross)

  /// Optional equi-join keys: when both are set the join executes as a
  /// hash join on left_key = right_key with `pred` as residual filter.
  ExprPtr left_key, right_key;

  // kUnnest / kOuterUnnest
  ExprPtr path;          ///< collection-valued expression to iterate
  std::string path_var;  ///< variable bound to each element

  // kReduce
  std::string monoid;
  ExprPtr head;

  // kNest
  GroupSpec group;
  std::vector<NestAgg> aggs;
  ExprPtr having;               ///< over {key, <agg names>}; may be null
  std::string key_name = "key";

  std::string ToString() const;
};

AlgOpPtr Scan(std::string table, std::string var);
AlgOpPtr SelectOp(AlgOpPtr input, ExprPtr pred);
AlgOpPtr JoinOp(AlgOpPtr left, AlgOpPtr right, ExprPtr pred);
AlgOpPtr EquiJoinOp(AlgOpPtr left, AlgOpPtr right, ExprPtr left_key, ExprPtr right_key,
                    ExprPtr residual_pred = nullptr);
AlgOpPtr OuterJoinOp(AlgOpPtr left, AlgOpPtr right, ExprPtr left_key, ExprPtr right_key);
AlgOpPtr UnnestOp(AlgOpPtr input, ExprPtr path, std::string path_var, bool outer = false);
AlgOpPtr ReduceOp(AlgOpPtr input, std::string monoid, ExprPtr head);
AlgOpPtr NestOp(AlgOpPtr input, GroupSpec group, std::vector<NestAgg> aggs,
                ExprPtr having = nullptr, std::string key_name = "key");

/// Deep structural equality of plans (used by the rewriter to detect
/// shareable sub-plans).
bool AlgEquals(const AlgOpPtr& a, const AlgOpPtr& b);

/// Deep copy.
AlgOpPtr AlgClone(const AlgOpPtr& op);

}  // namespace cleanm
