#include "algebra/rewriter.h"

#include <functional>
#include <map>
#include <set>

#include "algebra/algebra_eval.h"

namespace cleanm {
namespace {

bool CoveredBy(const ExprPtr& e, const std::set<std::string>& vars) {
  for (const auto& v : FreeVars(e)) {
    if (!vars.count(v)) return false;
  }
  return true;
}

std::set<std::string> PlanVars(const AlgOpPtr& plan) {
  std::set<std::string> out;
  for (const auto& v : CollectVars(plan)) out.insert(v);
  return out;
}

AlgOpPtr Rewrite(const AlgOpPtr& plan, RewriteStats* stats, bool* changed) {
  if (!plan) return plan;
  AlgOpPtr node = std::make_shared<AlgOp>(*plan);
  node->input = Rewrite(plan->input, stats, changed);
  node->right = Rewrite(plan->right, stats, changed);

  // A1: fuse stacked selections.
  if (node->kind == AlgKind::kSelect && node->input &&
      node->input->kind == AlgKind::kSelect) {
    auto fused = std::make_shared<AlgOp>(*node->input);
    fused->pred = Binary(BinaryOp::kAnd, node->input->pred, node->pred);
    if (stats) stats->selects_fused++;
    *changed = true;
    return fused;
  }

  // A2/A3: classify the conjuncts of a selection sitting on a join; push
  // one-sided conjuncts below, promote one spanning equality to the hash
  // key, keep the rest as a residual selection.
  if (node->kind == AlgKind::kSelect && node->input &&
      node->input->kind == AlgKind::kJoin) {
    const AlgOpPtr join = node->input;
    const auto left_vars = PlanVars(join->input);
    const auto right_vars = PlanVars(join->right);

    std::vector<ExprPtr> conjuncts;
    std::function<void(const ExprPtr&)> flatten = [&](const ExprPtr& p) {
      if (p->kind == ExprKind::kBinary && p->bin_op == BinaryOp::kAnd) {
        flatten(p->lhs);
        flatten(p->rhs);
      } else {
        conjuncts.push_back(p);
      }
    };
    flatten(node->pred);

    std::vector<ExprPtr> left_only, right_only, residual;
    ExprPtr lk, rk;
    for (const auto& c : conjuncts) {
      if (CoveredBy(c, left_vars)) {
        left_only.push_back(c);
        continue;
      }
      if (CoveredBy(c, right_vars)) {
        right_only.push_back(c);
        continue;
      }
      if (!lk && !join->left_key && c->kind == ExprKind::kBinary &&
          c->bin_op == BinaryOp::kEq) {
        if (CoveredBy(c->lhs, left_vars) && CoveredBy(c->rhs, right_vars)) {
          lk = c->lhs;
          rk = c->rhs;
          continue;
        }
        if (CoveredBy(c->rhs, left_vars) && CoveredBy(c->lhs, right_vars)) {
          lk = c->rhs;
          rk = c->lhs;
          continue;
        }
      }
      residual.push_back(c);
    }

    if (!left_only.empty() || !right_only.empty() || lk) {
      auto conjoin = [](const std::vector<ExprPtr>& ps) {
        ExprPtr acc = ps[0];
        for (size_t i = 1; i < ps.size(); i++) acc = Binary(BinaryOp::kAnd, acc, ps[i]);
        return acc;
      };
      auto rebuilt = std::make_shared<AlgOp>(*join);
      if (!left_only.empty()) {
        rebuilt->input = SelectOp(join->input, conjoin(left_only));
        if (stats) stats->selects_pushed++;
      }
      if (!right_only.empty()) {
        rebuilt->right = SelectOp(join->right, conjoin(right_only));
        if (stats) stats->selects_pushed++;
      }
      if (lk) {
        rebuilt->left_key = lk;
        rebuilt->right_key = rk;
        if (stats) stats->equi_joins_detected++;
      }
      *changed = true;
      if (residual.empty()) return rebuilt;
      return SelectOp(rebuilt, conjoin(residual));
    }
  }
  return node;
}

bool SameGroup(const GroupSpec& a, const GroupSpec& b) {
  return a.algo == b.algo && ExprEquals(a.term, b.term) && a.q == b.q && a.k == b.k &&
         a.delta == b.delta && a.centers == b.centers;
}

/// Walks from a root through unary Select/Unnest/Reduce nodes to a Nest;
/// records the pipeline outer-to-inner so it can be rebuilt over the shared
/// node. Reduce appears here since user GROUP BY queries project their
/// group tuples through a Reduce root (see cleaning/select_builder.cc), and
/// their Nest stage must still coalesce with the built-in cleaning plans.
struct NestAccess {
  std::vector<AlgOpPtr> pipeline;  // Select/Unnest/Reduce nodes, outermost first
  AlgOpPtr nest;
};

NestAccess FindNest(const AlgOpPtr& root) {
  NestAccess access;
  AlgOpPtr cur = root;
  while (cur && (cur->kind == AlgKind::kSelect || cur->kind == AlgKind::kUnnest ||
                 cur->kind == AlgKind::kOuterUnnest || cur->kind == AlgKind::kReduce)) {
    access.pipeline.push_back(cur);
    cur = cur->input;
  }
  if (cur && cur->kind == AlgKind::kNest) access.nest = cur;
  return access;
}

}  // namespace

AlgOpPtr RewritePlan(const AlgOpPtr& plan, RewriteStats* stats) {
  AlgOpPtr current = AlgClone(plan);
  for (int iter = 0; iter < 32; iter++) {
    bool changed = false;
    current = Rewrite(current, stats, &changed);
    if (!changed) break;
  }
  return current;
}

CoalescedPlans CoalesceNests(const std::vector<AlgOpPtr>& plans, RewriteStats* stats) {
  CoalescedPlans result;
  result.roots.resize(plans.size());

  // A representative shared Nest per (input, group) signature.
  struct SharedNest {
    AlgOpPtr node;  // shared, having == null
    // Maps (monoid, expr) of adopted aggregations to their merged name.
    std::vector<std::pair<NestAgg, std::string>> adopted;
  };
  std::vector<SharedNest> shared;

  for (size_t i = 0; i < plans.size(); i++) {
    NestAccess access = FindNest(plans[i]);
    if (!access.nest) {
      result.roots[i] = plans[i];
      continue;
    }
    // Find or create the shared nest for this signature.
    SharedNest* target = nullptr;
    for (auto& s : shared) {
      if (AlgEquals(s.node->input, access.nest->input) &&
          SameGroup(s.node->group, access.nest->group) &&
          s.node->key_name == access.nest->key_name) {
        target = &s;
        break;
      }
    }
    bool merged_into_existing = target != nullptr;
    if (!target) {
      SharedNest fresh;
      fresh.node = std::make_shared<AlgOp>(*access.nest);
      fresh.node->aggs.clear();
      fresh.node->having = nullptr;
      shared.push_back(std::move(fresh));
      target = &shared.back();
    }

    // Adopt this plan's aggregations, de-duplicating structurally equal
    // ones and renaming on name collisions.
    std::map<std::string, std::string> rename;  // original name → merged name
    for (const auto& agg : access.nest->aggs) {
      std::string merged_name;
      for (const auto& [existing, name] : target->adopted) {
        if (existing.monoid == agg.monoid && ExprEquals(existing.expr, agg.expr)) {
          merged_name = name;
          break;
        }
      }
      if (merged_name.empty()) {
        merged_name = agg.name;
        bool taken = true;
        int suffix = 0;
        while (taken) {
          taken = false;
          for (const auto& existing : target->node->aggs) {
            if (existing.name == merged_name) {
              taken = true;
              merged_name = agg.name + "_" + std::to_string(++suffix);
              break;
            }
          }
        }
        target->node->aggs.push_back({merged_name, agg.monoid, agg.expr});
        target->adopted.push_back({agg, merged_name});
      }
      rename[agg.name] = merged_name;
    }

    auto rename_expr = [&rename](ExprPtr e) {
      for (const auto& [from, to] : rename) {
        if (from != to) e = Substitute(e, from, Var(to));
      }
      return e;
    };

    // Rebuild this plan's private pipeline above the shared nest: its
    // having becomes a Select, then its original Select/Unnest chain with
    // aggregation references renamed to the merged names.
    AlgOpPtr rebuilt = target->node;
    if (access.nest->having) {
      rebuilt = SelectOp(rebuilt, rename_expr(access.nest->having));
    }
    for (auto it = access.pipeline.rbegin(); it != access.pipeline.rend(); ++it) {
      auto stage = std::make_shared<AlgOp>(**it);
      stage->input = rebuilt;
      if (stage->pred) stage->pred = rename_expr(stage->pred);
      if (stage->path) stage->path = rename_expr(stage->path);
      if (stage->head) stage->head = rename_expr(stage->head);
      rebuilt = stage;
    }
    result.roots[i] = rebuilt;
    if (merged_into_existing) {
      result.groups_merged++;
      if (stats) stats->nests_coalesced++;
    }
  }
  return result;
}

std::vector<std::string> SharedScanTables(const std::vector<AlgOpPtr>& plans) {
  std::map<std::string, int> counts;
  std::function<void(const AlgOpPtr&)> walk = [&](const AlgOpPtr& op) {
    if (!op) return;
    if (op->kind == AlgKind::kScan) counts[op->table]++;
    walk(op->input);
    walk(op->right);
  };
  for (const auto& p : plans) walk(p);
  std::vector<std::string> out;
  for (const auto& [table, count] : counts) {
    if (count > 1) out.push_back(table);
  }
  return out;
}

}  // namespace cleanm
