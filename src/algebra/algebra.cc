#include "algebra/algebra.h"

#include <sstream>

namespace cleanm {

const char* AlgKindName(AlgKind kind) {
  switch (kind) {
    case AlgKind::kScan: return "Scan";
    case AlgKind::kSelect: return "Select";
    case AlgKind::kJoin: return "Join";
    case AlgKind::kOuterJoin: return "OuterJoin";
    case AlgKind::kUnnest: return "Unnest";
    case AlgKind::kOuterUnnest: return "OuterUnnest";
    case AlgKind::kReduce: return "Reduce";
    case AlgKind::kNest: return "Nest";
  }
  return "?";
}

namespace {
AlgOpPtr Make(AlgKind kind) {
  auto op = std::make_shared<AlgOp>();
  op->kind = kind;
  return op;
}

const char* AlgoName(FilteringAlgo algo) {
  switch (algo) {
    case FilteringAlgo::kTokenFiltering: return "tf";
    case FilteringAlgo::kKMeans: return "kmeans";
    case FilteringAlgo::kExactKey: return "exact";
  }
  return "?";
}

void Print(const AlgOpPtr& op, int indent, std::ostringstream& os) {
  for (int i = 0; i < indent; i++) os << "  ";
  if (!op) {
    os << "<null>\n";
    return;
  }
  os << AlgKindName(op->kind);
  switch (op->kind) {
    case AlgKind::kScan:
      os << '(' << op->table << " as " << op->var << ")\n";
      return;
    case AlgKind::kSelect:
      os << '[' << op->pred->ToString() << "]\n";
      break;
    case AlgKind::kJoin:
    case AlgKind::kOuterJoin:
      os << '[';
      if (op->left_key) {
        os << op->left_key->ToString() << " = " << op->right_key->ToString();
        if (op->pred) os << " && " << op->pred->ToString();
      } else if (op->pred) {
        os << op->pred->ToString();
      } else {
        os << "true";
      }
      os << "]\n";
      break;
    case AlgKind::kUnnest:
    case AlgKind::kOuterUnnest:
      os << '[' << op->path_var << " <- " << op->path->ToString() << "]\n";
      break;
    case AlgKind::kReduce:
      os << '[' << op->monoid << " / " << op->head->ToString() << "]\n";
      break;
    case AlgKind::kNest: {
      os << "[by " << AlgoName(op->group.algo) << '(' << op->group.term->ToString()
         << ')';
      for (const auto& agg : op->aggs) {
        os << ", " << agg.name << "=" << agg.monoid << '(' << agg.expr->ToString()
           << ')';
      }
      if (op->having) os << ", having " << op->having->ToString();
      os << "]\n";
      break;
    }
  }
  if (op->input) Print(op->input, indent + 1, os);
  if (op->right) Print(op->right, indent + 1, os);
}
}  // namespace

std::string AlgOp::ToString() const {
  std::ostringstream os;
  AlgOpPtr self(const_cast<AlgOp*>(this), [](AlgOp*) {});
  Print(self, 0, os);
  return os.str();
}

AlgOpPtr Scan(std::string table, std::string var) {
  auto op = Make(AlgKind::kScan);
  op->table = std::move(table);
  op->var = std::move(var);
  return op;
}

AlgOpPtr SelectOp(AlgOpPtr input, ExprPtr pred) {
  auto op = Make(AlgKind::kSelect);
  op->input = std::move(input);
  op->pred = std::move(pred);
  return op;
}

AlgOpPtr JoinOp(AlgOpPtr left, AlgOpPtr right, ExprPtr pred) {
  auto op = Make(AlgKind::kJoin);
  op->input = std::move(left);
  op->right = std::move(right);
  op->pred = std::move(pred);
  return op;
}

AlgOpPtr EquiJoinOp(AlgOpPtr left, AlgOpPtr right, ExprPtr left_key, ExprPtr right_key,
                    ExprPtr residual_pred) {
  auto op = Make(AlgKind::kJoin);
  op->input = std::move(left);
  op->right = std::move(right);
  op->left_key = std::move(left_key);
  op->right_key = std::move(right_key);
  op->pred = std::move(residual_pred);
  return op;
}

AlgOpPtr OuterJoinOp(AlgOpPtr left, AlgOpPtr right, ExprPtr left_key, ExprPtr right_key) {
  auto op = Make(AlgKind::kOuterJoin);
  op->input = std::move(left);
  op->right = std::move(right);
  op->left_key = std::move(left_key);
  op->right_key = std::move(right_key);
  return op;
}

AlgOpPtr UnnestOp(AlgOpPtr input, ExprPtr path, std::string path_var, bool outer) {
  auto op = Make(outer ? AlgKind::kOuterUnnest : AlgKind::kUnnest);
  op->input = std::move(input);
  op->path = std::move(path);
  op->path_var = std::move(path_var);
  return op;
}

AlgOpPtr ReduceOp(AlgOpPtr input, std::string monoid, ExprPtr head) {
  auto op = Make(AlgKind::kReduce);
  op->input = std::move(input);
  op->monoid = std::move(monoid);
  op->head = std::move(head);
  return op;
}

AlgOpPtr NestOp(AlgOpPtr input, GroupSpec group, std::vector<NestAgg> aggs,
                ExprPtr having, std::string key_name) {
  auto op = Make(AlgKind::kNest);
  op->input = std::move(input);
  op->group = std::move(group);
  op->aggs = std::move(aggs);
  op->having = std::move(having);
  op->key_name = std::move(key_name);
  return op;
}

bool AlgEquals(const AlgOpPtr& a, const AlgOpPtr& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  if (a->kind != b->kind) return false;
  if (a->table != b->table || a->var != b->var) return false;
  if (!ExprEquals(a->pred, b->pred)) return false;
  if (!ExprEquals(a->left_key, b->left_key)) return false;
  if (!ExprEquals(a->right_key, b->right_key)) return false;
  if (!ExprEquals(a->path, b->path) || a->path_var != b->path_var) return false;
  if (a->monoid != b->monoid || !ExprEquals(a->head, b->head)) return false;
  if (a->group.algo != b->group.algo || !ExprEquals(a->group.term, b->group.term) ||
      a->group.q != b->group.q || a->group.k != b->group.k ||
      a->group.delta != b->group.delta || a->group.centers != b->group.centers) {
    return false;
  }
  if (a->aggs.size() != b->aggs.size()) return false;
  for (size_t i = 0; i < a->aggs.size(); i++) {
    if (a->aggs[i].name != b->aggs[i].name || a->aggs[i].monoid != b->aggs[i].monoid ||
        !ExprEquals(a->aggs[i].expr, b->aggs[i].expr)) {
      return false;
    }
  }
  if (!ExprEquals(a->having, b->having) || a->key_name != b->key_name) return false;
  return AlgEquals(a->input, b->input) && AlgEquals(a->right, b->right);
}

AlgOpPtr AlgClone(const AlgOpPtr& op) {
  if (!op) return nullptr;
  auto c = std::make_shared<AlgOp>(*op);
  c->input = AlgClone(op->input);
  c->right = AlgClone(op->right);
  c->pred = CloneExpr(op->pred);
  c->left_key = CloneExpr(op->left_key);
  c->right_key = CloneExpr(op->right_key);
  c->path = CloneExpr(op->path);
  c->head = CloneExpr(op->head);
  c->group.term = CloneExpr(op->group.term);
  c->having = CloneExpr(op->having);
  for (auto& agg : c->aggs) agg.expr = CloneExpr(agg.expr);
  return c;
}

}  // namespace cleanm
