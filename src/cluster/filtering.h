// Pair-pruning building blocks for similarity joins (Section 4.2/4.3):
// token filtering and the single-pass k-means variant of ClusterJoin.
//
// Both are monoid-mappable groupings (see src/monoid/monoid.h): each assigns
// every string to one or more group keys such that similar strings share at
// least one key with high probability; similarity checks then run only
// within groups, replacing the quadratic cartesian product.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "text/similarity.h"

namespace cleanm {

/// The filtering/blocking algorithms CleanM queries can name in the <op>
/// position of DEDUP / CLUSTER BY.
enum class FilteringAlgo {
  kTokenFiltering,  ///< group by q-gram tokens (paper: "tf")
  kKMeans,          ///< single-pass k-means on edit distance to sampled centers
  kExactKey,        ///< group by the exact attribute value (equality blocking)
};

/// Parses "token_filtering"/"tf", "kmeans"/"k-means", "exact"/"key".
bool ParseFilteringAlgo(std::string_view name, FilteringAlgo* out);

/// Configuration for either algorithm.
struct FilteringOptions {
  FilteringAlgo algo = FilteringAlgo::kTokenFiltering;
  size_t q = 2;           ///< token length for token filtering
  size_t k = 10;          ///< number of centers for k-means
  double delta = 1.0;     ///< extra distance slack for multi-assignment
  uint64_t seed = 42;     ///< center-sampling seed
};

/// \brief Group assignment produced by a filtering algorithm: the element at
/// input index `index` belongs to group `key`.
struct GroupAssignment {
  std::string key;
  uint32_t index;
};

/// \brief Token filtering (Section 4.3): associates each string with every
/// q-gram it contains, so candidate pairs must share at least one token.
/// The mapping is the monoid unit str -> {(token_i, {str}), ...}.
std::vector<GroupAssignment> TokenFilterAssign(const std::vector<std::string>& values,
                                               size_t q);

/// \brief Single-pass k-means variant (ClusterJoin-inspired): samples k
/// centers by reservoir sampling — the function-composition-monoid
/// parameterization of Section 4.3 — then assigns each string to every
/// center whose edit distance is within `delta` of the minimum (favouring
/// multiple assignments so that similar strings meet in some cluster).
class SinglePassKMeans {
 public:
  SinglePassKMeans(size_t k, double delta, uint64_t seed)
      : k_(k), delta_(delta), seed_(seed) {}

  /// Chooses centers from `sample_from` (dedicated dictionary when available,
  /// else the data itself) and returns them; deterministic given the seed.
  std::vector<std::string> SampleCenters(const std::vector<std::string>& sample_from);

  /// Assigns each value to its nearest center(s). `centers` must be the
  /// output of SampleCenters (or any non-empty center list).
  std::vector<GroupAssignment> Assign(const std::vector<std::string>& values,
                                      const std::vector<std::string>& centers) const;

 private:
  size_t k_;
  double delta_;
  uint64_t seed_;
};

/// Reservoir sampling (Vitter): k uniform samples in one pass. This is the
/// "center initialization via the function composition monoid" of the paper.
std::vector<std::string> ReservoirSample(const std::vector<std::string>& input,
                                         size_t k, uint64_t seed);

/// \brief Runs the configured filtering algorithm end to end: groups
/// `values` and returns key → member indexes. Exposed for direct use by
/// the cleaning operators and the benchmarks.
std::unordered_map<std::string, std::vector<uint32_t>> BuildGroups(
    const std::vector<std::string>& values, const FilteringOptions& options,
    const std::vector<std::string>& center_pool = {});

}  // namespace cleanm
