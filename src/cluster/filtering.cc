#include "cluster/filtering.h"

#include <algorithm>
#include <cctype>

#include "common/status.h"

namespace cleanm {

bool ParseFilteringAlgo(std::string_view name, FilteringAlgo* out) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  // Accept the spellings used in the paper's queries and obvious variants.
  if (lower == "token_filtering" || lower == "token filtering" || lower == "tf") {
    *out = FilteringAlgo::kTokenFiltering;
    return true;
  }
  if (lower == "kmeans" || lower == "k-means" || lower == "k_means") {
    *out = FilteringAlgo::kKMeans;
    return true;
  }
  if (lower == "exact" || lower == "key" || lower == "exact_key") {
    *out = FilteringAlgo::kExactKey;
    return true;
  }
  return false;
}

std::vector<GroupAssignment> TokenFilterAssign(const std::vector<std::string>& values,
                                               size_t q) {
  std::vector<GroupAssignment> out;
  for (uint32_t i = 0; i < values.size(); i++) {
    // Each distinct q-gram of the value yields one assignment; duplicates
    // within a single string are emitted once (set semantics of the token
    // filtering monoid).
    auto grams = QGrams(values[i], q);
    std::sort(grams.begin(), grams.end());
    grams.erase(std::unique(grams.begin(), grams.end()), grams.end());
    for (auto& g : grams) {
      out.push_back({std::move(g), i});
    }
  }
  return out;
}

std::vector<std::string> ReservoirSample(const std::vector<std::string>& input,
                                         size_t k, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> reservoir;
  reservoir.reserve(k);
  for (size_t i = 0; i < input.size(); i++) {
    if (reservoir.size() < k) {
      reservoir.push_back(input[i]);
    } else {
      const uint64_t j = rng.Uniform(i + 1);
      if (j < k) reservoir[j] = input[i];
    }
  }
  return reservoir;
}

std::vector<std::string> SinglePassKMeans::SampleCenters(
    const std::vector<std::string>& sample_from) {
  return ReservoirSample(sample_from, k_, seed_);
}

std::vector<GroupAssignment> SinglePassKMeans::Assign(
    const std::vector<std::string>& values,
    const std::vector<std::string>& centers) const {
  CLEANM_CHECK(!centers.empty());
  std::vector<GroupAssignment> out;
  for (uint32_t i = 0; i < values.size(); i++) {
    // Find the minimum edit distance to any center (the Min monoid of the
    // center-assignment step), then emit one assignment per center within
    // delta of that minimum.
    size_t best = SIZE_MAX;
    std::vector<size_t> dists(centers.size());
    for (size_t c = 0; c < centers.size(); c++) {
      dists[c] = LevenshteinDistance(values[i], centers[c]);
      best = std::min(best, dists[c]);
    }
    const double cutoff = static_cast<double>(best) + delta_;
    for (size_t c = 0; c < centers.size(); c++) {
      if (static_cast<double>(dists[c]) <= cutoff) {
        out.push_back({"c" + std::to_string(c), i});
      }
    }
  }
  return out;
}

std::unordered_map<std::string, std::vector<uint32_t>> BuildGroups(
    const std::vector<std::string>& values, const FilteringOptions& options,
    const std::vector<std::string>& center_pool) {
  std::vector<GroupAssignment> assignments;
  switch (options.algo) {
    case FilteringAlgo::kTokenFiltering:
      assignments = TokenFilterAssign(values, options.q);
      break;
    case FilteringAlgo::kKMeans: {
      SinglePassKMeans km(options.k, options.delta, options.seed);
      const auto centers = km.SampleCenters(center_pool.empty() ? values : center_pool);
      assignments = km.Assign(values, centers);
      break;
    }
    case FilteringAlgo::kExactKey:
      for (uint32_t i = 0; i < values.size(); i++) {
        assignments.push_back({values[i], i});
      }
      break;
  }
  std::unordered_map<std::string, std::vector<uint32_t>> groups;
  for (auto& a : assignments) {
    groups[a.key].push_back(a.index);
  }
  return groups;
}

}  // namespace cleanm
