#include "cluster/iterative.h"

#include <algorithm>
#include <limits>

#include "cluster/filtering.h"
#include "common/status.h"
#include "text/similarity.h"

namespace cleanm {

IterativeKMeansResult IterativeKMeans(const std::vector<std::string>& values,
                                      size_t k, size_t max_iters, uint64_t seed) {
  IterativeKMeansResult result;
  if (values.empty()) return result;
  k = std::min(k, values.size());
  result.centers = ReservoirSample(values, k, seed);
  result.assignment.assign(values.size(), 0);

  for (size_t iter = 0; iter < max_iters; iter++) {
    result.iterations = iter + 1;
    // Assignment step: nearest center per element (the Min monoid fold).
    bool changed = false;
    for (size_t i = 0; i < values.size(); i++) {
      size_t best = 0;
      size_t best_dist = SIZE_MAX;
      for (size_t c = 0; c < result.centers.size(); c++) {
        const size_t d = LevenshteinDistance(values[i], result.centers[c], best_dist);
        if (d < best_dist) {
          best_dist = d;
          best = c;
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
    }
    if (!changed && iter > 0) {
      result.converged = true;
      break;
    }
    // Update step: each center becomes its cluster's medoid.
    for (size_t c = 0; c < result.centers.size(); c++) {
      std::vector<size_t> members;
      for (size_t i = 0; i < values.size(); i++) {
        if (result.assignment[i] == c) members.push_back(i);
      }
      if (members.empty()) continue;
      size_t best_member = members[0];
      uint64_t best_cost = std::numeric_limits<uint64_t>::max();
      for (size_t candidate : members) {
        uint64_t cost = 0;
        for (size_t other : members) {
          cost += LevenshteinDistance(values[candidate], values[other]);
        }
        if (cost < best_cost) {
          best_cost = cost;
          best_member = candidate;
        }
      }
      result.centers[c] = values[best_member];
    }
  }
  return result;
}

std::vector<size_t> HierarchicalAgglomerative(const std::vector<std::string>& values,
                                              size_t k) {
  const size_t n = values.size();
  std::vector<size_t> cluster(n);
  if (n == 0) return cluster;
  CLEANM_CHECK(k >= 1);
  for (size_t i = 0; i < n; i++) cluster[i] = i;
  size_t n_clusters = n;

  // Pairwise distance matrix (single linkage merges shrink it implicitly).
  std::vector<std::vector<size_t>> dist(n, std::vector<size_t>(n, 0));
  for (size_t i = 0; i < n; i++) {
    for (size_t j = i + 1; j < n; j++) {
      dist[i][j] = dist[j][i] = LevenshteinDistance(values[i], values[j]);
    }
  }

  while (n_clusters > k) {
    // Min monoid fold over cross-cluster pairs: the closest pair merges.
    size_t best_i = 0, best_j = 0;
    size_t best = SIZE_MAX;
    for (size_t i = 0; i < n; i++) {
      for (size_t j = i + 1; j < n; j++) {
        if (cluster[i] == cluster[j]) continue;
        if (dist[i][j] < best) {
          best = dist[i][j];
          best_i = i;
          best_j = j;
        }
      }
    }
    if (best == SIZE_MAX) break;  // everything already merged
    const size_t from = cluster[best_j];
    const size_t to = cluster[best_i];
    for (size_t i = 0; i < n; i++) {
      if (cluster[i] == from) cluster[i] = to;
    }
    n_clusters--;
  }

  // Renumber cluster ids densely into [0, n_clusters).
  std::vector<size_t> remap(n, SIZE_MAX);
  size_t next = 0;
  for (size_t i = 0; i < n; i++) {
    if (remap[cluster[i]] == SIZE_MAX) remap[cluster[i]] = next++;
    cluster[i] = remap[cluster[i]];
  }
  return cluster;
}

}  // namespace cleanm
