// Multi-pass and hierarchical clustering (paper Section 4.3, "Multi-pass
// partitional algorithms" and "Hierarchical clustering").
//
// The paper maps iterative algorithms to the monoid calculus as n chained
// comprehensions — each iteration folds the dataset into a new state that
// feeds the next iteration (the "iteration monoid", a foldLeft). These are
// the reference implementations of that mapping:
//
//  * IterativeKMeans — the original k-means over strings under edit
//    distance: each pass assigns every string to its nearest center (a Min
//    monoid fold per element) and recomputes each center as the group's
//    medoid. Converges or stops after max_iters.
//  * HierarchicalAgglomerative — single-linkage agglomerative clustering:
//    every iteration merges the pair of clusters at minimum distance (a Min
//    monoid fold over pairs) until `k` clusters remain.
//
// Both are CPU-heavy relative to the single-pass variant (which is why
// CleanM defaults to single-pass for similarity-join pruning); the tests
// check they refine the single-pass grouping.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cleanm {

struct IterativeKMeansResult {
  std::vector<std::string> centers;
  /// assignment[i] = index into `centers` for input string i.
  std::vector<size_t> assignment;
  size_t iterations = 0;
  bool converged = false;
};

/// Classic k-means over strings with edit distance; centers are medoids
/// (the member minimizing the sum of distances within its cluster).
/// Deterministic given the seed. k is clamped to the input size.
IterativeKMeansResult IterativeKMeans(const std::vector<std::string>& values,
                                      size_t k, size_t max_iters, uint64_t seed);

/// Single-linkage agglomerative clustering down to `k` clusters.
/// Returns cluster id per input string (ids in [0, k)).
std::vector<size_t> HierarchicalAgglomerative(const std::vector<std::string>& values,
                                              size_t k);

}  // namespace cleanm
