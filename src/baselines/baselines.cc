#include "baselines/baselines.h"

namespace cleanm {

namespace {

CleanDBOptions SparkSqlOptions(CleanDBOptions base) {
  base.physical.aggregate_strategy = engine::AggregateStrategy::kSortShuffle;
  base.physical.theta_algo = engine::ThetaJoinAlgo::kCartesian;
  base.unify_operations = false;  // Catalyst sees each operation separately
  return base;
}

CleanDBOptions BigDansingOptions(CleanDBOptions base) {
  base.physical.aggregate_strategy = engine::AggregateStrategy::kHashShuffle;
  base.physical.theta_algo = engine::ThetaJoinAlgo::kMinMax;
  base.unify_operations = false;  // one rule per job
  return base;
}

bool ContainsCall(const ExprPtr& e) {
  if (!e) return false;
  if (e->kind == ExprKind::kCall) return true;
  if (ContainsCall(e->child) || ContainsCall(e->lhs) || ContainsCall(e->rhs) ||
      ContainsCall(e->cond) || ContainsCall(e->then_e) || ContainsCall(e->else_e)) {
    return true;
  }
  for (const auto& a : e->args) {
    if (ContainsCall(a)) return true;
  }
  for (const auto& v : e->field_values) {
    if (ContainsCall(v)) return true;
  }
  return false;
}

}  // namespace

SparkSqlSim::SparkSqlSim(CleanDBOptions base) : db_(SparkSqlOptions(std::move(base))) {}

Result<OpResult> SparkSqlSim::CheckDenialConstraint(const std::string& table,
                                                    ExprPtr pred, ExprPtr prefilter,
                                                    uint64_t max_comparisons) {
  // Spark SQL evaluates the inequality join as a cartesian product; above
  // the comparison budget the job would not terminate in useful time, which
  // the benchmark reports instead of hanging.
  CLEANM_ASSIGN_OR_RETURN(const Dataset* t, db_.GetTable(table));
  uint64_t left_rows = t->num_rows();
  if (prefilter) {
    // Conservative estimate: count the prefiltered side exactly.
    Catalog catalog;
    catalog.tables[table] = t;
    auto filtered = EvalPlanTuples(SelectOp(Scan(table, "t1"), prefilter), catalog);
    if (filtered.ok()) left_rows = filtered.value().size();
  }
  const uint64_t total = left_rows * t->num_rows();
  if (total > max_comparisons) {
    return Status::Internal("did not terminate: cartesian plan needs " +
                            std::to_string(total) + " comparisons (budget " +
                            std::to_string(max_comparisons) + ")");
  }
  return db_.CheckDenialConstraint(table, std::move(pred), std::move(prefilter));
}

Result<QueryResult> SparkSqlSim::ExecuteQuery(const CleanMQuery& query) {
  Timer timer;
  CLEANM_ASSIGN_OR_RETURN(QueryResult result, db_.ExecuteQuery(query));
  // The combination pass Catalyst generates: a full outer join over the
  // violation sets of all operations — one extra shuffle of every
  // violation set by entity hash.
  auto& cluster = db_.cluster();
  for (const auto& op : result.ops) {
    std::vector<Row> rows;
    rows.reserve(op.violations.size());
    for (const auto& v : op.violations) rows.push_back(Row{v});
    auto data = cluster.Parallelize(rows);
    (void)cluster.Shuffle(data, [](const Row& r) { return r[0].Hash(); });
  }
  result.total_seconds = timer.ElapsedSeconds();
  result.metrics = cluster.metrics().Snapshot();
  return result;
}

BigDansingSim::BigDansingSim(CleanDBOptions base)
    : db_(BigDansingOptions(std::move(base))) {}

Result<OpResult> BigDansingSim::CheckFd(const std::string& table,
                                        const std::string& var, const FdClause& fd) {
  for (const auto& e : fd.lhs) {
    if (ContainsCall(e)) {
      return Status::NotImplemented(
          "BigDansing rules cannot reference computed attributes (" +
          e->ToString() + ")");
    }
  }
  for (const auto& e : fd.rhs) {
    if (ContainsCall(e)) {
      return Status::NotImplemented(
          "BigDansing rules cannot reference computed attributes (" +
          e->ToString() + ")");
    }
  }
  return db_.CheckFd(table, var, fd);
}

}  // namespace cleanm
