// Baseline-system simulators (paper Section 8 competitors).
//
// Both baselines run on the same virtual cluster and value model as CleanDB
// — what differs is exactly what the paper describes as differing:
//
//  SparkSqlSim (Spark SQL + Catalyst):
//   * sort-based shuffle aggregation (range partitioning → skew-prone)
//   * theta joins execute as cartesian product + filter
//   * a multi-operation query runs each operation standalone, then pays an
//     extra full-outer-join pass to combine the violation sets (Catalyst
//     cannot detect the cross-operation grouping opportunity)
//   * no term-validation operator: the only expressible plan is the cross
//     product against the dictionary (provided for the record; it is the
//     plan that "was non-interactive" in the paper's experiments)
//
//  BigDansingSim (BigDansing):
//   * hash-based shuffle aggregation (all raw rows travel)
//   * theta joins use per-partition min-max pruning
//   * one rule per job — no cross-operation work sharing at all
//   * no computed attributes in rules: an FD whose side contains a function
//     call (e.g. prefix(phone)) is rejected, as in Figure 5's note
#pragma once

#include "cleaning/cleandb.h"

namespace cleanm {

/// Spark SQL simulator. Wraps a CleanDB configured with Spark SQL's
/// physical strategies and per-operation execution.
class SparkSqlSim {
 public:
  explicit SparkSqlSim(CleanDBOptions base = {});

  void RegisterTable(const std::string& name, Dataset dataset) {
    db_.RegisterTable(name, std::move(dataset));
  }

  Result<OpResult> CheckFd(const std::string& table, const std::string& var,
                           const FdClause& fd) {
    return db_.CheckFd(table, var, fd);
  }

  /// Cartesian-product theta join: the plan that fails to terminate at
  /// scale (Table 5). `max_comparisons` aborts the run beyond a budget so
  /// benchmarks can report "did not terminate" without actually hanging.
  Result<OpResult> CheckDenialConstraint(const std::string& table, ExprPtr pred,
                                         ExprPtr prefilter, uint64_t max_comparisons);

  Result<OpResult> Deduplicate(const std::string& table, const std::string& var,
                               const DedupClause& dedup) {
    return db_.Deduplicate(table, var, dedup);
  }

  /// Runs a multi-operation query: each operation standalone plus the
  /// combination pass (full outer join of the violation sets).
  Result<QueryResult> ExecuteQuery(const CleanMQuery& query);

  engine::Cluster& cluster() { return db_.cluster(); }

 private:
  CleanDB db_;
};

/// BigDansing simulator.
class BigDansingSim {
 public:
  explicit BigDansingSim(CleanDBOptions base = {});

  void RegisterTable(const std::string& name, Dataset dataset) {
    db_.RegisterTable(name, std::move(dataset));
  }

  /// Rejects rules with computed attributes (no UDF support in rule
  /// specifications); otherwise runs under hash-based shuffling.
  Result<OpResult> CheckFd(const std::string& table, const std::string& var,
                           const FdClause& fd);

  /// Min-max partition-pruned theta join.
  Result<OpResult> CheckDenialConstraint(const std::string& table, ExprPtr pred,
                                         ExprPtr prefilter = nullptr) {
    return db_.CheckDenialConstraint(table, std::move(pred), std::move(prefilter));
  }

  Result<OpResult> Deduplicate(const std::string& table, const std::string& var,
                               const DedupClause& dedup) {
    return db_.Deduplicate(table, var, dedup);
  }

  engine::Cluster& cluster() { return db_.cluster(); }

 private:
  CleanDB db_;
};

}  // namespace cleanm
