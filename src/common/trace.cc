#include "common/trace.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

namespace cleanm {

namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<uint64_t> g_total_spans{0};
std::atomic<uint64_t> g_recorder_generation{1};
std::atomic<uint64_t> g_next_thread_ordinal{1};

struct TlsTrace {
  TraceRecorder* rec = nullptr;
  uint64_t parent = 0;
  // Cached per-thread buffer for `rec`; valid only while `gen` matches the
  // recorder's generation (guards against a dead recorder reallocated at
  // the same address).
  void* buf = nullptr;
  uint64_t gen = 0;
};
thread_local TlsTrace tls_trace;

}  // namespace

uint64_t TraceThreadOrdinal() {
  thread_local uint64_t ord =
      g_next_thread_ordinal.fetch_add(1, std::memory_order_relaxed);
  return ord;
}

struct TraceRecorder::LocalBuf {
  uint64_t owner = 0;  // TraceThreadOrdinal of the only thread that appends
  std::vector<TraceSpan> spans;
};

struct TraceRecorder::Impl {
  std::mutex mu;
  std::vector<std::unique_ptr<LocalBuf>> bufs;
};

TraceRecorder::TraceRecorder()
    : impl_(new Impl),
      generation_(g_recorder_generation.fetch_add(1, std::memory_order_relaxed)),
      epoch_ns_(SteadyNowNs()) {}

TraceRecorder::~TraceRecorder() { delete impl_; }

uint64_t TraceRecorder::NowNs() const {
  const uint64_t now = SteadyNowNs();
  return now >= epoch_ns_ ? now - epoch_ns_ : 0;
}

TraceRecorder::LocalBuf* TraceRecorder::BufForThisThread() {
  if (tls_trace.rec == this && tls_trace.gen == generation_ && tls_trace.buf) {
    return static_cast<LocalBuf*>(tls_trace.buf);
  }
  const uint64_t ord = TraceThreadOrdinal();
  std::lock_guard<std::mutex> lock(impl_->mu);
  LocalBuf* buf = nullptr;
  for (auto& b : impl_->bufs) {
    if (b->owner == ord) {
      buf = b.get();
      break;
    }
  }
  if (!buf) {
    impl_->bufs.push_back(std::make_unique<LocalBuf>());
    buf = impl_->bufs.back().get();
    buf->owner = ord;
  }
  if (tls_trace.rec == this) {
    tls_trace.buf = buf;
    tls_trace.gen = generation_;
  }
  return buf;
}

void TraceRecorder::Record(TraceSpan&& span) {
  BufForThisThread()->spans.push_back(std::move(span));
  g_total_spans.fetch_add(1, std::memory_order_relaxed);
}

std::vector<TraceSpan> TraceRecorder::Drain() {
  std::vector<TraceSpan> out;
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& buf : impl_->bufs) {
    for (auto& s : buf->spans) out.push_back(std::move(s));
    buf->spans.clear();
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceSpan& a, const TraceSpan& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

uint64_t TraceRecorder::TotalSpansRecorded() {
  return g_total_spans.load(std::memory_order_relaxed);
}

TraceRecorderScope::TraceRecorderScope(TraceRecorder* rec, uint64_t parent)
    : prev_rec_(tls_trace.rec), prev_parent_(tls_trace.parent) {
  tls_trace.rec = rec;
  tls_trace.parent = parent;
  tls_trace.buf = nullptr;
  tls_trace.gen = 0;
}

TraceRecorderScope::~TraceRecorderScope() {
  tls_trace.rec = prev_rec_;
  tls_trace.parent = prev_parent_;
  tls_trace.buf = nullptr;
  tls_trace.gen = 0;
}

TraceRecorder* TraceRecorderScope::Current() { return tls_trace.rec; }

uint64_t TraceRecorderScope::CurrentParent() { return tls_trace.parent; }

TraceScope::TraceScope(const char* category, const char* name, const void* op,
                       int node, const QueryMetrics* counters_src)
    : rec_(tls_trace.rec) {
  if (!rec_) return;
  counters_src_ = counters_src;
  span_.id = rec_->NextId();
  span_.parent = tls_trace.parent;
  span_.category = category;
  span_.name = name;
  span_.op = op;
  span_.node = node;
  span_.thread = TraceThreadOrdinal();
  span_.start_ns = rec_->NowNs();
  saved_parent_ = tls_trace.parent;
  tls_trace.parent = span_.id;
  if (counters_src_) before_ = counters_src_->Snapshot();
}

TraceScope::~TraceScope() {
  if (!rec_) return;
  tls_trace.parent = saved_parent_;
  span_.dur_ns = rec_->NowNs() - span_.start_ns;
  if (counters_src_) {
    span_.counters = CountersDelta(counters_src_->Snapshot(), before_);
    span_.has_counters = true;
  }
  rec_->Record(std::move(span_));
}

}  // namespace cleanm
