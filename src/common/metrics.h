// Execution metrics collected by the virtual cluster.
//
// The paper's evaluation reasons about shuffle traffic and per-node load
// (skew); since our substrate is a thread-based simulator rather than a real
// network, these counters are the observable equivalent of "cross-node
// traffic" and "node lag" (see DESIGN.md, Substitutions).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace cleanm {

/// \brief Plain copyable point-in-time copy of the engine counters — the
/// form results and tests carry around (QueryMetrics itself is atomic and
/// non-copyable). Produced by QueryMetrics::Snapshot().
struct MetricsCounters {
  uint64_t rows_shuffled = 0;
  uint64_t bytes_shuffled = 0;
  /// Network messages: one per flushed remote (source, destination) batch.
  uint64_t shuffle_batches = 0;
  uint64_t comparisons = 0;  ///< pairwise similarity checks
  uint64_t rows_scanned = 0;
  uint64_t groups_built = 0;
  /// Registered user-function invocations (scalar, repair, and aggregate
  /// unit/merge calls) on the physical path.
  uint64_t udf_calls = 0;
  /// Cells overwritten by the repair applier (src/repair/).
  uint64_t repairs_applied = 0;
  /// High-water mark of *logical* bytes (RowByteSize, the same accounting
  /// the shuffle meter and the partition cache use) held in transient
  /// operator-output buffers at any instant of the execution: whole
  /// materialized operator outputs on the materialize-first path, in-flight
  /// morsels on the pipelined path. Cache-resident partitionings (scans,
  /// shared Nest outputs) and breaker-internal state (aggregation hash
  /// tables, shuffle buffers) are identical on both paths and excluded.
  uint64_t peak_bytes_materialized = 0;
  /// Morsels flushed through the pipelined execution path (0 on the
  /// materialize-first path).
  uint64_t morsels_processed = 0;
  /// Task attempts that failed with an (injected) node-unavailable fault.
  uint64_t tasks_failed = 0;
  /// Failed task attempts that were retried (per-node partition
  /// re-execution; tasks_failed - tasks_retried attempts were fatal).
  uint64_t tasks_retried = 0;
  /// Nodes taken out of service after node_blacklist_threshold consecutive
  /// failures; their partitions re-shuffle across the surviving width.
  uint64_t nodes_blacklisted = 0;
  /// Poison rows recorded and skipped by the quarantine instead of
  /// aborting the execution.
  uint64_t rows_quarantined = 0;
  /// Executions that ended with kCancelled or kDeadlineExceeded.
  uint64_t executions_cancelled = 0;
  /// Bytes written to the execution's spill file by pipeline breakers
  /// (Nest partials, hash-join build sides) and the partition cache's
  /// page write-back. 0 when the run fit in the pool budget.
  uint64_t bytes_spilled = 0;
  /// Buffer-pool frames dropped by its byte budget during the execution.
  uint64_t pages_evicted = 0;
  /// Page pins served from resident frames / read from disk.
  uint64_t buffer_pool_hits = 0;
  uint64_t buffer_pool_misses = 0;

  std::string ToString() const;

  friend bool operator==(const MetricsCounters& a, const MetricsCounters& b) {
    return a.rows_shuffled == b.rows_shuffled &&
           a.bytes_shuffled == b.bytes_shuffled &&
           a.shuffle_batches == b.shuffle_batches &&
           a.comparisons == b.comparisons && a.rows_scanned == b.rows_scanned &&
           a.groups_built == b.groups_built && a.udf_calls == b.udf_calls &&
           a.repairs_applied == b.repairs_applied &&
           a.peak_bytes_materialized == b.peak_bytes_materialized &&
           a.morsels_processed == b.morsels_processed &&
           a.tasks_failed == b.tasks_failed &&
           a.tasks_retried == b.tasks_retried &&
           a.nodes_blacklisted == b.nodes_blacklisted &&
           a.rows_quarantined == b.rows_quarantined &&
           a.executions_cancelled == b.executions_cancelled &&
           a.bytes_spilled == b.bytes_spilled &&
           a.pages_evicted == b.pages_evicted &&
           a.buffer_pool_hits == b.buffer_pool_hits &&
           a.buffer_pool_misses == b.buffer_pool_misses;
  }
  friend bool operator!=(const MetricsCounters& a, const MetricsCounters& b) {
    return !(a == b);
  }
};

/// \brief Counters for one engine run. Thread-safe.
struct QueryMetrics {
  std::atomic<uint64_t> rows_shuffled{0};
  std::atomic<uint64_t> bytes_shuffled{0};
  /// Network messages: one per flushed remote (source, destination) batch.
  std::atomic<uint64_t> shuffle_batches{0};
  std::atomic<uint64_t> comparisons{0};       ///< pairwise similarity checks
  std::atomic<uint64_t> rows_scanned{0};
  std::atomic<uint64_t> groups_built{0};
  /// Registered user-function invocations (scalar, repair, aggregate units).
  std::atomic<uint64_t> udf_calls{0};
  /// Cells overwritten by the repair applier.
  std::atomic<uint64_t> repairs_applied{0};
  /// Live transient operator-output bytes right now (gauge); see
  /// MetricsCounters::peak_bytes_materialized for what counts.
  std::atomic<uint64_t> bytes_materialized_now{0};
  std::atomic<uint64_t> peak_bytes_materialized{0};
  std::atomic<uint64_t> morsels_processed{0};
  std::atomic<uint64_t> tasks_failed{0};
  std::atomic<uint64_t> tasks_retried{0};
  std::atomic<uint64_t> nodes_blacklisted{0};
  std::atomic<uint64_t> rows_quarantined{0};
  std::atomic<uint64_t> executions_cancelled{0};
  std::atomic<uint64_t> bytes_spilled{0};
  std::atomic<uint64_t> pages_evicted{0};
  std::atomic<uint64_t> buffer_pool_hits{0};
  std::atomic<uint64_t> buffer_pool_misses{0};

  /// Adds `bytes` of transient buffer to the gauge and folds the new level
  /// into the peak. Thread-safe (workers charge in-flight morsels).
  void ChargeMaterialized(uint64_t bytes) {
    const uint64_t now = bytes_materialized_now.fetch_add(bytes) + bytes;
    uint64_t peak = peak_bytes_materialized.load();
    while (now > peak &&
           !peak_bytes_materialized.compare_exchange_weak(peak, now)) {
    }
  }

  /// Removes a buffer charged by ChargeMaterialized from the gauge.
  void ReleaseMaterialized(uint64_t bytes) {
    bytes_materialized_now.fetch_sub(bytes);
  }

  /// Folds one completed execution's counters into a cumulative total:
  /// counts add, while the materialization high-water mark folds as a
  /// running maximum (concurrent executions each report their own peak —
  /// summing them would claim memory that was never live at once).
  void Accumulate(const MetricsCounters& s) {
    rows_shuffled += s.rows_shuffled;
    bytes_shuffled += s.bytes_shuffled;
    shuffle_batches += s.shuffle_batches;
    comparisons += s.comparisons;
    rows_scanned += s.rows_scanned;
    groups_built += s.groups_built;
    udf_calls += s.udf_calls;
    repairs_applied += s.repairs_applied;
    morsels_processed += s.morsels_processed;
    tasks_failed += s.tasks_failed;
    tasks_retried += s.tasks_retried;
    nodes_blacklisted += s.nodes_blacklisted;
    rows_quarantined += s.rows_quarantined;
    executions_cancelled += s.executions_cancelled;
    bytes_spilled += s.bytes_spilled;
    pages_evicted += s.pages_evicted;
    buffer_pool_hits += s.buffer_pool_hits;
    buffer_pool_misses += s.buffer_pool_misses;
    uint64_t peak = peak_bytes_materialized.load();
    while (s.peak_bytes_materialized > peak &&
           !peak_bytes_materialized.compare_exchange_weak(
               peak, s.peak_bytes_materialized)) {
    }
  }

  void Reset() {
    rows_shuffled = 0;
    bytes_shuffled = 0;
    shuffle_batches = 0;
    comparisons = 0;
    rows_scanned = 0;
    groups_built = 0;
    udf_calls = 0;
    repairs_applied = 0;
    bytes_materialized_now = 0;
    peak_bytes_materialized = 0;
    morsels_processed = 0;
    tasks_failed = 0;
    tasks_retried = 0;
    nodes_blacklisted = 0;
    rows_quarantined = 0;
    executions_cancelled = 0;
    bytes_spilled = 0;
    pages_evicted = 0;
    buffer_pool_hits = 0;
    buffer_pool_misses = 0;
  }

  MetricsCounters Snapshot() const {
    MetricsCounters s;
    s.rows_shuffled = rows_shuffled.load();
    s.bytes_shuffled = bytes_shuffled.load();
    s.shuffle_batches = shuffle_batches.load();
    s.comparisons = comparisons.load();
    s.rows_scanned = rows_scanned.load();
    s.groups_built = groups_built.load();
    s.udf_calls = udf_calls.load();
    s.repairs_applied = repairs_applied.load();
    s.peak_bytes_materialized = peak_bytes_materialized.load();
    s.morsels_processed = morsels_processed.load();
    s.tasks_failed = tasks_failed.load();
    s.tasks_retried = tasks_retried.load();
    s.nodes_blacklisted = nodes_blacklisted.load();
    s.rows_quarantined = rows_quarantined.load();
    s.executions_cancelled = executions_cancelled.load();
    s.bytes_spilled = bytes_spilled.load();
    s.pages_evicted = pages_evicted.load();
    s.buffer_pool_hits = buffer_pool_hits.load();
    s.buffer_pool_misses = buffer_pool_misses.load();
    return s;
  }

  std::string ToString() const { return Snapshot().ToString(); }
};

/// \brief Per-node load sample used to quantify skew-induced imbalance.
struct LoadReport {
  std::vector<uint64_t> rows_per_node;

  /// max/mean load ratio; 1.0 = perfectly balanced.
  double ImbalanceFactor() const {
    if (rows_per_node.empty()) return 1.0;
    uint64_t mx = 0, sum = 0;
    for (uint64_t r : rows_per_node) {
      mx = mx > r ? mx : r;
      sum += r;
    }
    if (sum == 0) return 1.0;
    const double mean = static_cast<double>(sum) / rows_per_node.size();
    return static_cast<double>(mx) / mean;
  }
};

}  // namespace cleanm
