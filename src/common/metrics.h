// Execution metrics collected by the virtual cluster.
//
// The paper's evaluation reasons about shuffle traffic and per-node load
// (skew); since our substrate is a thread-based simulator rather than a real
// network, these counters are the observable equivalent of "cross-node
// traffic" and "node lag" (see DESIGN.md, Substitutions).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace cleanm {

// Single source of truth for the engine counter fields. Every per-field
// operation (declaration, ToString, operator==, Accumulate, Reset, Snapshot,
// the Prometheus exporter) is generated from this list, so adding a counter
// is a one-line change that cannot be silently dropped from any of them.
//
// X(name, Fold) — Fold selects how Accumulate combines the field across
// executions: Add for plain additive counts, Max for high-water marks
// (concurrent executions each report their own peak; summing them would
// claim memory that was never live at once).
//
// Field semantics:
//   rows_shuffled / bytes_shuffled — cross-node traffic routed by Shuffle
//     and BroadcastAll.
//   shuffle_batches — network messages: one per flushed remote
//     (source, destination) batch.
//   comparisons — pairwise similarity checks.
//   rows_scanned — rows pushed through Cluster::Parallelize.
//   groups_built — Nest/aggregate hash groups finalized per node.
//   udf_calls — registered user-function invocations (scalar, repair, and
//     aggregate unit/merge calls) on the physical path.
//   repairs_applied — cells overwritten by the repair applier (src/repair/).
//   peak_bytes_materialized — high-water mark of *logical* bytes
//     (RowByteSize, the same accounting the shuffle meter and the partition
//     cache use) held in transient operator-output buffers at any instant of
//     the execution: whole materialized operator outputs on the
//     materialize-first path, in-flight morsels on the pipelined path.
//     Cache-resident partitionings (scans, shared Nest outputs) and
//     breaker-internal state (aggregation hash tables, shuffle buffers) are
//     identical on both paths and excluded.
//   morsels_processed — morsels flushed through the pipelined execution path
//     (0 on the materialize-first path).
//   tasks_failed — task attempts that failed with an (injected)
//     node-unavailable fault.
//   tasks_retried — failed task attempts that were retried (per-node
//     partition re-execution; tasks_failed - tasks_retried were fatal).
//   nodes_blacklisted — nodes taken out of service after
//     node_blacklist_threshold consecutive failures; their partitions
//     re-shuffle across the surviving width.
//   rows_quarantined — poison rows recorded and skipped by the quarantine
//     instead of aborting the execution.
//   executions_cancelled — executions that ended with kCancelled or
//     kDeadlineExceeded.
//   bytes_spilled — bytes written to the execution's spill file by pipeline
//     breakers (Nest partials, hash-join build sides) and the partition
//     cache's page write-back. 0 when the run fit in the pool budget.
//   pages_evicted — buffer-pool frames dropped by its byte budget.
//   buffer_pool_hits / buffer_pool_misses — page pins served from resident
//     frames / read from disk.
//   delta_rows_processed — rows applied from table mutation delta logs
//     (added + removed), by the incremental validator and by the planner's
//     delta-extended scan path, instead of being re-partitioned from
//     scratch.
//   groups_remerged — cached Nest group partials updated in place by an
//     incremental re-validation: delta units folded into a copied
//     accumulator, or a touched group re-folded from its member bag.
//   incremental_executions — executions served by the incremental delta
//     path (cached group partials + delta merge) instead of a full run.
#define CLEANM_METRICS_FIELDS(X)    \
  X(rows_shuffled, Add)             \
  X(bytes_shuffled, Add)            \
  X(shuffle_batches, Add)           \
  X(comparisons, Add)               \
  X(rows_scanned, Add)              \
  X(groups_built, Add)              \
  X(udf_calls, Add)                 \
  X(repairs_applied, Add)           \
  X(peak_bytes_materialized, Max)   \
  X(morsels_processed, Add)         \
  X(tasks_failed, Add)              \
  X(tasks_retried, Add)             \
  X(nodes_blacklisted, Add)         \
  X(rows_quarantined, Add)          \
  X(executions_cancelled, Add)      \
  X(bytes_spilled, Add)             \
  X(pages_evicted, Add)             \
  X(buffer_pool_hits, Add)          \
  X(buffer_pool_misses, Add)        \
  X(delta_rows_processed, Add)      \
  X(groups_remerged, Add)           \
  X(incremental_executions, Add)

/// \brief Plain copyable point-in-time copy of the engine counters — the
/// form results and tests carry around (QueryMetrics itself is atomic and
/// non-copyable). Produced by QueryMetrics::Snapshot().
struct MetricsCounters {
#define CLEANM_X(name, fold) uint64_t name = 0;
  CLEANM_METRICS_FIELDS(CLEANM_X)
#undef CLEANM_X

  std::string ToString() const;

  friend bool operator==(const MetricsCounters& a, const MetricsCounters& b) {
    bool eq = true;
#define CLEANM_X(name, fold) eq = eq && a.name == b.name;
    CLEANM_METRICS_FIELDS(CLEANM_X)
#undef CLEANM_X
    return eq;
  }
  friend bool operator!=(const MetricsCounters& a, const MetricsCounters& b) {
    return !(a == b);
  }
};

/// Per-field saturating difference `after - before`. Used by the tracer to
/// attribute counter movement to the span that was open while it happened.
/// (The Max-fold peak field subtracts like the others; a span-level "peak
/// delta" is only meaningful when `before` was captured at a lower level.)
inline MetricsCounters CountersDelta(const MetricsCounters& after,
                                     const MetricsCounters& before) {
  MetricsCounters d;
#define CLEANM_X(name, fold) \
  d.name = after.name >= before.name ? after.name - before.name : 0;
  CLEANM_METRICS_FIELDS(CLEANM_X)
#undef CLEANM_X
  return d;
}

/// \brief Counters for one engine run. Thread-safe.
struct QueryMetrics {
#define CLEANM_X(name, fold) std::atomic<uint64_t> name{0};
  CLEANM_METRICS_FIELDS(CLEANM_X)
#undef CLEANM_X
  /// Live transient operator-output bytes right now (gauge); see
  /// peak_bytes_materialized above for what counts. Reset but never
  /// snapshotted — a finished execution's gauge is 0 by construction.
  std::atomic<uint64_t> bytes_materialized_now{0};

  /// Adds `bytes` of transient buffer to the gauge and folds the new level
  /// into the peak. Thread-safe (workers charge in-flight morsels).
  void ChargeMaterialized(uint64_t bytes) {
    const uint64_t now = bytes_materialized_now.fetch_add(bytes) + bytes;
    FoldMax(peak_bytes_materialized, now);
  }

  /// Removes a buffer charged by ChargeMaterialized from the gauge.
  void ReleaseMaterialized(uint64_t bytes) {
    bytes_materialized_now.fetch_sub(bytes);
  }

  /// Folds one completed execution's counters into a cumulative total,
  /// per-field Add or Max as declared in CLEANM_METRICS_FIELDS.
  void Accumulate(const MetricsCounters& s) {
#define CLEANM_X(name, fold) Fold##fold(name, s.name);
    CLEANM_METRICS_FIELDS(CLEANM_X)
#undef CLEANM_X
  }

  void Reset() {
#define CLEANM_X(name, fold) name = 0;
    CLEANM_METRICS_FIELDS(CLEANM_X)
#undef CLEANM_X
    bytes_materialized_now = 0;
  }

  MetricsCounters Snapshot() const {
    MetricsCounters s;
#define CLEANM_X(name, fold) s.name = name.load();
    CLEANM_METRICS_FIELDS(CLEANM_X)
#undef CLEANM_X
    return s;
  }

  std::string ToString() const { return Snapshot().ToString(); }

 private:
  static void FoldAdd(std::atomic<uint64_t>& a, uint64_t v) { a += v; }
  static void FoldMax(std::atomic<uint64_t>& a, uint64_t v) {
    uint64_t cur = a.load();
    while (v > cur && !a.compare_exchange_weak(cur, v)) {
    }
  }
};

/// \brief Per-node load sample used to quantify skew-induced imbalance.
struct LoadReport {
  std::vector<uint64_t> rows_per_node;

  /// max/mean load ratio; 1.0 = perfectly balanced.
  double ImbalanceFactor() const {
    if (rows_per_node.empty()) return 1.0;
    uint64_t mx = 0, sum = 0;
    for (uint64_t r : rows_per_node) {
      mx = mx > r ? mx : r;
      sum += r;
    }
    if (sum == 0) return 1.0;
    const double mean = static_cast<double>(sum) / rows_per_node.size();
    return static_cast<double>(mx) / mean;
  }
};

}  // namespace cleanm
