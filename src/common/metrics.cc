#include "common/metrics.h"

#include <sstream>

namespace cleanm {

std::string MetricsCounters::ToString() const {
  std::ostringstream os;
  os << "rows_shuffled=" << rows_shuffled << " bytes_shuffled=" << bytes_shuffled
     << " shuffle_batches=" << shuffle_batches << " comparisons=" << comparisons
     << " rows_scanned=" << rows_scanned << " groups_built=" << groups_built
     << " udf_calls=" << udf_calls << " repairs_applied=" << repairs_applied
     << " peak_bytes_materialized=" << peak_bytes_materialized
     << " morsels_processed=" << morsels_processed
     << " tasks_failed=" << tasks_failed << " tasks_retried=" << tasks_retried
     << " nodes_blacklisted=" << nodes_blacklisted
     << " rows_quarantined=" << rows_quarantined
     << " executions_cancelled=" << executions_cancelled
     << " bytes_spilled=" << bytes_spilled
     << " pages_evicted=" << pages_evicted
     << " buffer_pool_hits=" << buffer_pool_hits
     << " buffer_pool_misses=" << buffer_pool_misses;
  return os.str();
}

}  // namespace cleanm
