#include "common/metrics.h"

#include <sstream>

namespace cleanm {

std::string QueryMetrics::ToString() const {
  std::ostringstream os;
  os << "rows_shuffled=" << rows_shuffled.load()
     << " bytes_shuffled=" << bytes_shuffled.load()
     << " shuffle_batches=" << shuffle_batches.load()
     << " comparisons=" << comparisons.load()
     << " rows_scanned=" << rows_scanned.load()
     << " groups_built=" << groups_built.load();
  return os.str();
}

}  // namespace cleanm
