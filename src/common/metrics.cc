#include "common/metrics.h"

#include <sstream>

namespace cleanm {

std::string MetricsCounters::ToString() const {
  std::ostringstream os;
  const char* sep = "";
#define CLEANM_X(name, fold) \
  os << sep << #name "=" << name; \
  sep = " ";
  CLEANM_METRICS_FIELDS(CLEANM_X)
#undef CLEANM_X
  return os.str();
}

}  // namespace cleanm
