// Hashing utilities used by shuffles, hash joins, and grouping operators.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace cleanm {

/// 64-bit FNV-1a over arbitrary bytes. Deterministic across runs so that
/// partition assignments (and therefore experiment shapes) are reproducible.
inline uint64_t Fnv1a(const void* data, size_t len, uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; i++) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t HashString(std::string_view s, uint64_t seed = 0xcbf29ce484222325ULL) {
  return Fnv1a(s.data(), s.size(), seed);
}

inline uint64_t HashInt(uint64_t v, uint64_t seed = 0xcbf29ce484222325ULL) {
  return Fnv1a(&v, sizeof(v), seed);
}

/// Combines two hashes (boost::hash_combine flavour).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

}  // namespace cleanm
