// Deterministic pseudo-random utilities shared by the data generators and
// the sampling-based operators (reservoir sampling, theta-join statistics).
//
// All randomness in the repository flows through Rng so experiments are
// reproducible from a seed.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace cleanm {

/// \brief SplitMix64-seeded xoshiro256** generator.
///
/// Small, fast, and good enough statistically for workload synthesis and
/// sampling; not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    auto rotl = [](uint64_t v, int k) { return (v << k) | (v >> (64 - k)); };
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) {
    CLEANM_CHECK(n > 0);
    return Next() % n;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    CLEANM_CHECK(hi >= lo);
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability p.
  bool Chance(double p) { return NextDouble() < p; }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    CLEANM_CHECK(!items.empty());
    return items[Uniform(items.size())];
  }

 private:
  uint64_t state_[4];
};

/// \brief Zipf(s) sampler over {1..n} via inverse-CDF table.
///
/// Used to model skewed value frequencies: duplicate counts for Figure 8(a)
/// and key skew in the TPC-H noise injection (Section 8 setup).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double s, uint64_t seed = 42) : rng_(seed) {
    CLEANM_CHECK(n > 0);
    cdf_.reserve(n);
    double sum = 0;
    for (uint64_t i = 1; i <= n; i++) {
      sum += 1.0 / std::pow(static_cast<double>(i), s);
      cdf_.push_back(sum);
    }
    for (auto& c : cdf_) c /= sum;
  }

  /// Returns a rank in [1, n]; rank 1 is the most frequent.
  uint64_t Next() {
    const double u = rng_.NextDouble();
    // Binary search for the first cdf entry >= u.
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo + 1;
  }

 private:
  Rng rng_;
  std::vector<double> cdf_;
};

}  // namespace cleanm
