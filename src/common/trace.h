// Execution tracing: thread-safe, low-overhead RAII span recording.
//
// A TraceRecorder is installed for one execution (TraceRecorderScope, a TLS
// pattern mirroring engine::MetricsScope); TraceScope then records spans
// wherever the engine is instrumented. When no recorder is installed — the
// default — a TraceScope costs one thread-local load and a null check, so
// the instrumentation can stay compiled in everywhere (the bench gate keeps
// the disabled path within a ≤2% overhead budget).
//
// Spans are appended to per-thread buffers (owner-thread-only writes; no
// lock on the hot path) and merged by Drain() after the execution's workers
// have joined, which is what makes the merge race-free: the join provides
// the happens-before edge, not a lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace cleanm {

/// \brief One completed span: a named, timed region of an execution,
/// attributed to a plan operator (`op`), a virtual node (`node`, -1 =
/// driver), and the OS thread that ran it.
struct TraceSpan {
  uint64_t id = 0;
  uint64_t parent = 0;  ///< id of the enclosing span; 0 = root
  /// Static-lifetime category string: "operator", "cluster", "pipeline",
  /// "io", "fault", "repair".
  const char* category = "";
  /// Static-lifetime span name (operator kind, primitive name, ...).
  const char* name = "";
  /// Plan-node identity (the AlgOp* the span executes), nullptr if none.
  /// Opaque to this layer; the profiler uses it to group spans per operator.
  const void* op = nullptr;
  int node = -1;        ///< virtual node id; -1 = driver-side work
  uint64_t thread = 0;  ///< stable per-thread ordinal (trace track id)
  uint64_t start_ns = 0;  ///< relative to the recorder's epoch
  uint64_t dur_ns = 0;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  /// Optional per-node row distribution (Nest routing, partition sizes).
  std::vector<uint64_t> node_rows;
  /// Engine-counter movement while the span was open (driver-side operator
  /// spans only; concurrent spans would double-count shared counters).
  bool has_counters = false;
  MetricsCounters counters;
};

/// \brief Collects spans for one execution. Thread-safe: each thread writes
/// to its own buffer; Drain() merges them once the execution has joined all
/// its workers.
class TraceRecorder {
 public:
  TraceRecorder();
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Monotonic nanoseconds since this recorder was created.
  uint64_t NowNs() const;

  uint64_t NextId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }

  /// Appends a finished span to the calling thread's buffer.
  void Record(TraceSpan&& span);

  /// Merges and returns all per-thread buffers, ordered by start time.
  /// Only call after every thread that recorded into this recorder has been
  /// joined (or its pool epoch finished) — that join is the happens-before
  /// edge that makes the lock-free per-thread appends visible here.
  std::vector<TraceSpan> Drain();

  /// Process-wide count of spans ever recorded (all recorders). Lets tests
  /// assert that profiling off means literally zero spans, not just an
  /// empty result.
  static uint64_t TotalSpansRecorded();

 private:
  struct LocalBuf;
  LocalBuf* BufForThisThread();

  struct Impl;
  Impl* impl_;
  std::atomic<uint64_t> next_id_{1};
  /// Distinguishes this recorder from a dead one reallocated at the same
  /// address, so a thread's cached buffer pointer can never dangle.
  uint64_t generation_;
  uint64_t epoch_ns_;
};

/// \brief RAII installer: makes `rec` the calling thread's active recorder
/// and `parent` the id under which new TraceScopes nest. Mirrors
/// engine::MetricsScope — fan-out points capture the current recorder and
/// span id driver-side and re-install them inside worker lambdas.
class TraceRecorderScope {
 public:
  explicit TraceRecorderScope(TraceRecorder* rec, uint64_t parent = 0);
  ~TraceRecorderScope();
  TraceRecorderScope(const TraceRecorderScope&) = delete;
  TraceRecorderScope& operator=(const TraceRecorderScope&) = delete;

  /// The calling thread's active recorder, or nullptr (tracing disabled).
  static TraceRecorder* Current();
  /// The span id new scopes on this thread nest under (0 = root).
  static uint64_t CurrentParent();

 private:
  TraceRecorder* prev_rec_;
  uint64_t prev_parent_;
};

/// \brief RAII span. A no-op (one TLS load) when no recorder is installed
/// on the calling thread. `category` and `name` must have static lifetime.
/// When `counters_src` is given, the span captures the counter delta
/// between construction and destruction — only meaningful for spans that
/// are sequential on their thread (the driver's operator spans).
class TraceScope {
 public:
  TraceScope(const char* category, const char* name, const void* op = nullptr,
             int node = -1, const QueryMetrics* counters_src = nullptr);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  bool active() const { return rec_ != nullptr; }
  /// This span's id, for parenting fan-out work under it; 0 when inactive.
  uint64_t id() const { return rec_ ? span_.id : 0; }

  void SetRows(uint64_t in, uint64_t out) {
    if (!rec_) return;
    span_.rows_in = in;
    span_.rows_out = out;
  }
  void SetRowsIn(uint64_t n) {
    if (rec_) span_.rows_in = n;
  }
  void SetRowsOut(uint64_t n) {
    if (rec_) span_.rows_out = n;
  }
  void SetNodeRows(std::vector<uint64_t> rows) {
    if (!rec_) return;
    span_.node_rows = std::move(rows);
  }

 private:
  TraceRecorder* rec_;
  const QueryMetrics* counters_src_ = nullptr;
  TraceSpan span_;
  MetricsCounters before_;
  uint64_t saved_parent_ = 0;
};

/// Stable small ordinal for the calling thread, used as the trace track id.
uint64_t TraceThreadOrdinal();

}  // namespace cleanm
