// Status / Result error-handling primitives, in the style of Arrow / RocksDB.
//
// Library entry points return Status (or Result<T> when they produce a
// value) instead of throwing. Internal invariant violations use CLEANM_CHECK,
// which aborts: a broken invariant is a bug, not an error condition.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace cleanm {

/// Machine-readable error category carried by Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kTypeError,
  kIOError,
  kNotImplemented,
  kKeyError,
  kInternal,
  kCancelled,          ///< execution cancelled via CancelToken
  kDeadlineExceeded,   ///< ExecOptions::deadline_ns elapsed mid-execution
  kUnavailable,        ///< a node stayed unavailable past max_task_retries
};

/// \brief Lightweight success/error value returned by fallible operations.
///
/// A default-constructed Status is OK and carries no allocation. Error
/// statuses carry a code and a human-readable message.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status KeyError(std::string msg) {
    return Status(StatusCode::kKeyError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Renders "OK" or "<code>: <message>" for logs and test failures.
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + msg_;
  }

  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kParseError: return "ParseError";
      case StatusCode::kTypeError: return "TypeError";
      case StatusCode::kIOError: return "IOError";
      case StatusCode::kNotImplemented: return "NotImplemented";
      case StatusCode::kKeyError: return "KeyError";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kCancelled: return "Cancelled";
      case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
      case StatusCode::kUnavailable: return "Unavailable";
    }
    return "Unknown";
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string msg_;
};

/// \brief Either a value of type T or an error Status.
///
/// Mirrors arrow::Result: `ValueOrDie()` asserts success (tests, examples),
/// while production call sites branch on `ok()` first.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : v_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(v_); }
  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(v_);
  }
  T& value() { return std::get<T>(v_); }
  const T& value() const { return std::get<T>(v_); }
  T&& MoveValue() { return std::move(std::get<T>(v_)); }

  /// Returns the value or aborts with the error message.
  T& ValueOrDie() {
    if (!ok()) {
      std::fprintf(stderr, "Result::ValueOrDie on error: %s\n",
                   status().ToString().c_str());
      std::abort();
    }
    return value();
  }

 private:
  std::variant<T, Status> v_;
};

#define CLEANM_RETURN_NOT_OK(expr)            \
  do {                                        \
    ::cleanm::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (0)

#define CLEANM_CONCAT_IMPL(a, b) a##b
#define CLEANM_CONCAT(a, b) CLEANM_CONCAT_IMPL(a, b)

#define CLEANM_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = tmp.MoveValue()

#define CLEANM_ASSIGN_OR_RETURN(lhs, rexpr) \
  CLEANM_ASSIGN_OR_RETURN_IMPL(CLEANM_CONCAT(_res_, __LINE__), lhs, rexpr)

/// Invariant check: aborts on violation. For programmer errors only.
#define CLEANM_CHECK(cond)                                              \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "CLEANM_CHECK failed at %s:%d: %s\n",        \
                   __FILE__, __LINE__, #cond);                          \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

}  // namespace cleanm
