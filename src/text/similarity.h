// String similarity metrics and tokenization.
//
// Section 3.1: denial constraints, deduplication, and term validation all
// reduce to similarity joins, so the cost of a cleaning task is dominated by
// (a) how many pairs are compared and (b) how fast one comparison is.
// This module provides the comparison kernels; src/cluster provides the
// pair-pruning (token filtering / k-means).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cleanm {

/// Levenshtein edit distance with the standard two-row DP and an optional
/// early-exit bound: if the distance provably exceeds `max_bound` the
/// function returns max_bound + 1 without finishing the DP.
size_t LevenshteinDistance(std::string_view a, std::string_view b,
                           size_t max_bound = SIZE_MAX);

/// Normalized Levenshtein similarity in [0, 1]:
/// 1 - distance / max(|a|, |b|). Two empty strings are 100% similar.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Thresholded check: true iff LevenshteinSimilarity(a, b) >= theta.
/// Uses the distance bound for an early exit, so it is cheaper than
/// computing the full similarity when the strings are far apart.
bool LevenshteinSimilarAtLeast(std::string_view a, std::string_view b, double theta);

/// Jaccard similarity of the q-gram sets of the two strings.
double JaccardQGramSimilarity(std::string_view a, std::string_view b, size_t q = 2);

/// Jaccard similarity of whitespace-token sets.
double JaccardTokenSimilarity(std::string_view a, std::string_view b);

/// Splits `s` into its q-grams (sliding windows of length q). Strings
/// shorter than q yield the whole string as their single token.
std::vector<std::string> QGrams(std::string_view s, size_t q);

/// Splits on runs of whitespace.
std::vector<std::string> WhitespaceTokens(std::string_view s);

/// Euclidean distance between equal-length numeric vectors.
double EuclideanDistance(const std::vector<double>& a, const std::vector<double>& b);

/// Supported metric identifiers as they appear in CleanM queries
/// (DEDUP(op, metric, theta, ...)).
enum class SimilarityMetric {
  kLevenshtein,
  kJaccard,
  kEuclidean,
};

/// Parses "LD" / "levenshtein" / "jaccard" / "euclidean" (case-insensitive).
/// Returns false on unknown names.
bool ParseSimilarityMetric(std::string_view name, SimilarityMetric* out);

/// Dispatches to the chosen string metric; Euclidean is not valid here.
double StringSimilarity(SimilarityMetric metric, std::string_view a, std::string_view b);

}  // namespace cleanm
