#include "text/similarity.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <unordered_set>

#include "common/status.h"

namespace cleanm {

size_t LevenshteinDistance(std::string_view a, std::string_view b, size_t max_bound) {
  if (a.size() > b.size()) std::swap(a, b);
  // |len(a) - len(b)| is a lower bound on the distance.
  if (b.size() - a.size() > max_bound) return max_bound + 1;
  std::vector<size_t> prev(a.size() + 1), cur(a.size() + 1);
  for (size_t i = 0; i <= a.size(); i++) prev[i] = i;
  for (size_t j = 1; j <= b.size(); j++) {
    cur[0] = j;
    size_t row_min = cur[0];
    for (size_t i = 1; i <= a.size(); i++) {
      const size_t sub = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, sub});
      row_min = std::min(row_min, cur[i]);
    }
    if (row_min > max_bound) return max_bound + 1;  // cannot recover
    std::swap(prev, cur);
  }
  return prev[a.size()];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  const size_t d = LevenshteinDistance(a, b);
  return 1.0 - static_cast<double>(d) / static_cast<double>(longest);
}

bool LevenshteinSimilarAtLeast(std::string_view a, std::string_view b, double theta) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return true;
  // similarity >= theta  <=>  distance <= (1 - theta) * longest.
  // The epsilon guards against (1 - 0.8) * 5 = 0.999... flooring to 0.
  const auto bound =
      static_cast<size_t>((1.0 - theta) * static_cast<double>(longest) + 1e-9);
  return LevenshteinDistance(a, b, bound) <= bound;
}

std::vector<std::string> QGrams(std::string_view s, size_t q) {
  CLEANM_CHECK(q > 0);
  std::vector<std::string> grams;
  if (s.size() < q) {
    grams.emplace_back(s);
    return grams;
  }
  grams.reserve(s.size() - q + 1);
  for (size_t i = 0; i + q <= s.size(); i++) {
    grams.emplace_back(s.substr(i, q));
  }
  return grams;
}

std::vector<std::string> WhitespaceTokens(std::string_view s) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) i++;
    const size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) i++;
    if (i > start) tokens.emplace_back(s.substr(start, i - start));
  }
  return tokens;
}

namespace {
double JaccardOfSets(const std::vector<std::string>& a, const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::unordered_set<std::string> sa(a.begin(), a.end());
  std::unordered_set<std::string> sb(b.begin(), b.end());
  size_t inter = 0;
  for (const auto& t : sa) {
    if (sb.count(t)) inter++;
  }
  const size_t uni = sa.size() + sb.size() - inter;
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}
}  // namespace

double JaccardQGramSimilarity(std::string_view a, std::string_view b, size_t q) {
  return JaccardOfSets(QGrams(a, q), QGrams(b, q));
}

double JaccardTokenSimilarity(std::string_view a, std::string_view b) {
  return JaccardOfSets(WhitespaceTokens(a), WhitespaceTokens(b));
}

double EuclideanDistance(const std::vector<double>& a, const std::vector<double>& b) {
  CLEANM_CHECK(a.size() == b.size());
  double sum = 0;
  for (size_t i = 0; i < a.size(); i++) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

bool ParseSimilarityMetric(std::string_view name, SimilarityMetric* out) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "ld" || lower == "levenshtein") {
    *out = SimilarityMetric::kLevenshtein;
    return true;
  }
  if (lower == "jaccard") {
    *out = SimilarityMetric::kJaccard;
    return true;
  }
  if (lower == "euclidean") {
    *out = SimilarityMetric::kEuclidean;
    return true;
  }
  return false;
}

double StringSimilarity(SimilarityMetric metric, std::string_view a, std::string_view b) {
  switch (metric) {
    case SimilarityMetric::kLevenshtein: return LevenshteinSimilarity(a, b);
    case SimilarityMetric::kJaccard: return JaccardQGramSimilarity(a, b);
    case SimilarityMetric::kEuclidean: break;
  }
  CLEANM_CHECK(false && "Euclidean metric requires numeric vectors");
  return 0;
}

}  // namespace cleanm
