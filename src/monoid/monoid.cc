#include "monoid/monoid.h"

#include <algorithm>
#include <unordered_map>

#include "cluster/filtering.h"
#include "text/similarity.h"

namespace cleanm {

namespace {

Value Identity(const Value& v) { return v; }

double Num(const Value& v) { return v.ToDouble(); }

Value NumValue(const Value& like_a, const Value& like_b, double result) {
  // Preserve int-ness when both operands are ints and the result is whole.
  if (like_a.type() == ValueType::kInt && like_b.type() == ValueType::kInt) {
    return Value(static_cast<int64_t>(result));
  }
  return Value(result);
}

const std::unordered_map<std::string, Monoid>& Registry() {
  static const auto* registry = [] {
    auto* m = new std::unordered_map<std::string, Monoid>();
    m->emplace("sum", Monoid(
        "sum", Value(int64_t{0}), Identity,
        [](Value a, const Value& b) { return NumValue(a, b, Num(a) + Num(b)); },
        /*commutative=*/true, /*idempotent=*/false));
    m->emplace("prod", Monoid(
        "prod", Value(int64_t{1}), Identity,
        [](Value a, const Value& b) { return NumValue(a, b, Num(a) * Num(b)); },
        true, false));
    // max/min use null as the identity: merge(null, x) = x.
    m->emplace("max", Monoid(
        "max", Value::Null(), Identity,
        [](Value a, const Value& b) {
          if (a.is_null()) return b;
          if (b.is_null()) return a;
          return a.Compare(b) >= 0 ? a : b;
        },
        true, true));
    m->emplace("min", Monoid(
        "min", Value::Null(), Identity,
        [](Value a, const Value& b) {
          if (a.is_null()) return b;
          if (b.is_null()) return a;
          return a.Compare(b) <= 0 ? a : b;
        },
        true, true));
    m->emplace("some", Monoid(
        "some", Value(false), Identity,
        [](Value a, const Value& b) { return Value(a.AsBool() || b.AsBool()); },
        true, true));
    m->emplace("all", Monoid(
        "all", Value(true), Identity,
        [](Value a, const Value& b) { return Value(a.AsBool() && b.AsBool()); },
        true, true));
    m->emplace("count", Monoid(
        "count", Value(int64_t{0}),
        [](const Value&) { return Value(int64_t{1}); },
        [](Value a, const Value& b) { return Value(a.AsInt() + b.AsInt()); },
        true, false));
    m->emplace("bag", Monoid(
        "bag", Value(ValueList{}),
        [](const Value& v) { return Value(ValueList{v}); },
        [](Value a, const Value& b) {
          auto& list = a.MutableList();
          const auto& other = b.AsList();
          list.insert(list.end(), other.begin(), other.end());
          return a;
        },
        true, false));
    m->emplace("list", Monoid(
        "list", Value(ValueList{}),
        [](const Value& v) { return Value(ValueList{v}); },
        [](Value a, const Value& b) {
          auto& list = a.MutableList();
          const auto& other = b.AsList();
          list.insert(list.end(), other.begin(), other.end());
          return a;
        },
        /*commutative=*/false, false));
    m->emplace("set", Monoid(
        "set", Value(ValueList{}),
        [](const Value& v) { return Value(ValueList{v}); },
        [](Value a, const Value& b) {
          auto& list = a.MutableList();
          for (const auto& v : b.AsList()) {
            bool found = false;
            for (const auto& existing : list) {
              if (existing.Equals(v)) {
                found = true;
                break;
              }
            }
            if (!found) list.push_back(v);
          }
          return a;
        },
        true, true));
    return m;
  }();
  return *registry;
}

}  // namespace

Result<const Monoid*> LookupMonoid(const std::string& name) {
  const auto& registry = Registry();
  auto it = registry.find(name);
  if (it == registry.end()) {
    return Status::KeyError("unknown monoid '" + name + "'");
  }
  return &it->second;
}

bool IsCollectionMonoid(const std::string& name) {
  return name == "bag" || name == "list" || name == "set";
}

namespace {

/// Shared merge for grouping monoids: dictionary union with bag concat on
/// collision. Dictionaries are Value structs sorted by key so that merge
/// output is canonical (making associativity checkable by Equals).
Value GroupDictMerge(Value a, const Value& b) {
  ValueStruct merged = a.AsStruct();
  for (const auto& [key, bag] : b.AsStruct()) {
    bool found = false;
    for (auto& [mkey, mbag] : merged) {
      if (mkey == key) {
        auto& list = mbag.MutableList();
        const auto& other = bag.AsList();
        list.insert(list.end(), other.begin(), other.end());
        found = true;
        break;
      }
    }
    // Deep-copy on adoption: the merged dictionary's bags are mutated by
    // later merges and must not alias the (caller-owned) right argument.
    if (!found) merged.emplace_back(key, bag.DeepCopy());
  }
  std::sort(merged.begin(), merged.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  return Value(std::move(merged));
}

Value MakeGroupDict(const std::vector<std::string>& keys, const Value& element) {
  ValueStruct dict;
  for (const auto& k : keys) {
    dict.emplace_back(k, Value(ValueList{element}));
  }
  std::sort(dict.begin(), dict.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  return Value(std::move(dict));
}

}  // namespace

std::shared_ptr<Monoid> MakeTokenFilterMonoid(size_t q) {
  return std::make_shared<Monoid>(
      "tokenfilter", Value(ValueStruct{}),
      [q](const Value& v) {
        auto grams = QGrams(v.AsString(), q);
        std::sort(grams.begin(), grams.end());
        grams.erase(std::unique(grams.begin(), grams.end()), grams.end());
        return MakeGroupDict(grams, v);
      },
      GroupDictMerge, /*commutative=*/true, /*idempotent=*/false);
}

std::shared_ptr<Monoid> MakeKMeansMonoid(std::vector<std::string> centers,
                                         double delta) {
  CLEANM_CHECK(!centers.empty());
  return std::make_shared<Monoid>(
      "kmeans", Value(ValueStruct{}),
      [centers = std::move(centers), delta](const Value& v) {
        const std::string& s = v.AsString();
        size_t best = SIZE_MAX;
        std::vector<size_t> dists(centers.size());
        for (size_t c = 0; c < centers.size(); c++) {
          dists[c] = LevenshteinDistance(s, centers[c]);
          best = std::min(best, dists[c]);
        }
        std::vector<std::string> keys;
        for (size_t c = 0; c < centers.size(); c++) {
          if (static_cast<double>(dists[c]) <= static_cast<double>(best) + delta) {
            keys.push_back("c" + std::to_string(c));
          }
        }
        return MakeGroupDict(keys, v);
      },
      GroupDictMerge, true, false);
}

std::shared_ptr<Monoid> MakeExactGroupMonoid() {
  return std::make_shared<Monoid>(
      "exactgroup", Value(ValueStruct{}),
      [](const Value& v) { return MakeGroupDict({v.ToString()}, v); },
      GroupDictMerge, true, false);
}

}  // namespace cleanm
