// Expression IR shared by all three abstraction levels.
//
// CleanM queries desugar into monoid comprehensions (Section 4) whose heads,
// predicates, and generator sources are expressions from this IR. The same
// IR survives into the nested relational algebra (Section 5) and is finally
// compiled to closures by the physical layer (Section 6).
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/value.h"

namespace cleanm {

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

enum class ExprKind {
  kConst,          ///< literal Value
  kVar,            ///< bound variable reference
  kField,          ///< child.field (record projection)
  kBinary,         ///< arithmetic / comparison / boolean
  kUnary,          ///< not, neg
  kIf,             ///< if-then-else
  kCall,           ///< builtin function call
  kRecord,         ///< record construction {name: expr, ...}
  kComprehension,  ///< nested monoid comprehension
};

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

enum class UnaryOp { kNot, kNeg };

const char* BinaryOpName(BinaryOp op);

/// One qualifier in a comprehension body: a generator (var <- source),
/// a filter predicate, or a let-binding (var := expr).
struct Qualifier {
  enum class Kind { kGenerator, kPredicate, kBinding };
  Kind kind;
  std::string var;  // generator / binding target (empty for predicates)
  ExprPtr expr;     // generator source / predicate / bound expression
};

/// \brief A monoid comprehension ⊕{ head | qualifiers }.
///
/// `monoid` names an entry in the monoid registry (src/monoid/monoid.h):
/// "sum", "max", "bag", "set", "list", "some", "all", ... The comprehension
/// evaluates `head` for every binding combination produced by the
/// qualifiers and merges the results with the monoid's ⊕.
struct ComprehensionExpr {
  std::string monoid;
  ExprPtr head;
  std::vector<Qualifier> qualifiers;
};

/// Sentinel for Expr::src_pos: no source location recorded.
inline constexpr size_t kNoSourcePos = static_cast<size_t>(-1);

/// \brief One node of the expression tree. A tagged union in the Arrow
/// style: `kind` selects which members are meaningful.
struct Expr {
  ExprKind kind;

  /// Raw offset of this node's defining token in the query text the parser
  /// consumed (currently recorded for kCall: the function-name token), or
  /// kNoSourcePos for programmatically built expressions. Prepare-time
  /// validation turns it into line/column for positioned errors.
  size_t src_pos = kNoSourcePos;

  Value literal;                    // kConst
  std::string name;                 // kVar: variable; kField: field name;
                                    // kCall: function name
  ExprPtr child;                    // kField / kUnary operand
  BinaryOp bin_op = BinaryOp::kAdd; // kBinary
  UnaryOp un_op = UnaryOp::kNot;    // kUnary
  ExprPtr lhs, rhs;                 // kBinary
  ExprPtr cond, then_e, else_e;     // kIf
  std::vector<ExprPtr> args;        // kCall
  std::vector<std::string> field_names;  // kRecord
  std::vector<ExprPtr> field_values;     // kRecord
  ComprehensionExpr comp;           // kComprehension

  /// Pretty-prints the expression (Scala-like comprehension syntax).
  std::string ToString() const;
};

// ---- Constructors ----

ExprPtr Const(Value v);
ExprPtr ConstInt(int64_t v);
ExprPtr ConstDouble(double v);
ExprPtr ConstString(std::string v);
ExprPtr ConstBool(bool v);
ExprPtr Var(std::string name);
ExprPtr FieldAccess(ExprPtr child, std::string field);
ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr Unary(UnaryOp op, ExprPtr child);
ExprPtr If(ExprPtr cond, ExprPtr then_e, ExprPtr else_e);
ExprPtr Call(std::string fn, std::vector<ExprPtr> args);
ExprPtr Record(std::vector<std::string> names, std::vector<ExprPtr> values);
ExprPtr Comprehension(std::string monoid, ExprPtr head, std::vector<Qualifier> quals);

Qualifier Generator(std::string var, ExprPtr source);
Qualifier Predicate(ExprPtr pred);
Qualifier Binding(std::string var, ExprPtr expr);

/// Deep structural copy.
ExprPtr CloneExpr(const ExprPtr& e);

/// Deep structural equality (used by tests and the rewriter).
bool ExprEquals(const ExprPtr& a, const ExprPtr& b);

/// Free variables of `e` (variables not bound by an enclosing qualifier
/// within `e` itself).
std::set<std::string> FreeVars(const ExprPtr& e);

/// Substitutes `replacement` for every free occurrence of variable `var`.
ExprPtr Substitute(const ExprPtr& e, const std::string& var, const ExprPtr& replacement);

}  // namespace cleanm
