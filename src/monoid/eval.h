// Reference interpreter for the expression IR and monoid comprehensions.
//
// This is the *executable semantics* of CleanM: a direct, driver-side
// evaluation of comprehensions over in-memory collections. The distributed
// path (algebra → physical plan → engine) must agree with it; the test
// suite checks normalized and translated plans against this interpreter.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "monoid/expr.h"
#include "monoid/monoid.h"

namespace cleanm {

/// Variable bindings. Collections are Values of list type; records are
/// struct Values, so field access works uniformly.
using Env = std::map<std::string, Value>;

/// \brief Evaluation context: the base monoid registry plus caller-supplied
/// parameterized monoids (e.g. "tf2" → token filtering with q=2) and an
/// optional fallback for function calls the builtin library does not know
/// (registered user functions; supplied by the algebra/cleaning layers so
/// this module does not depend on the function registry).
struct EvalContext {
  std::map<std::string, std::shared_ptr<Monoid>> extra_monoids;
  /// Tried when EvalBuiltin reports kKeyError for a call's name. Should
  /// itself return kKeyError for names it does not know either.
  std::function<Result<Value>(const std::string&, const std::vector<Value>&)>
      call_fallback;

  Result<const Monoid*> FindMonoid(const std::string& name) const;
};

/// Evaluates `e` under `env`. Comprehensions iterate their generators in
/// order (nested-loop semantics) and fold heads with the monoid's merge.
Result<Value> EvalExpr(const ExprPtr& e, const Env& env, const EvalContext& ctx = {});

/// \brief Evaluates a builtin function by name. Shared with the physical
/// expression compiler so both layers agree on function semantics.
///
/// Supported: prefix, lower, upper, trim, substr, length, contains, concat,
/// split, tokens, levenshtein, similarity, similar, year, month, day, abs,
/// to_string, to_int, distinct, count, avg, is_null.
Result<Value> EvalBuiltin(const std::string& name, const std::vector<Value>& args);

/// True when `name` is a builtin function (callable via EvalBuiltin).
bool IsBuiltinFunction(const std::string& name);

/// Declared argument count of a builtin; -1 = variadic. kKeyError for
/// unknown names. Used by Prepare-time call validation so arity mistakes
/// fail with a positioned error instead of a per-row null at execution.
Result<int> BuiltinFunctionArity(const std::string& name);

}  // namespace cleanm
