// Reference interpreter for the expression IR and monoid comprehensions.
//
// This is the *executable semantics* of CleanM: a direct, driver-side
// evaluation of comprehensions over in-memory collections. The distributed
// path (algebra → physical plan → engine) must agree with it; the test
// suite checks normalized and translated plans against this interpreter.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "monoid/expr.h"
#include "monoid/monoid.h"

namespace cleanm {

/// Variable bindings. Collections are Values of list type; records are
/// struct Values, so field access works uniformly.
using Env = std::map<std::string, Value>;

/// \brief Evaluation context: the base monoid registry plus caller-supplied
/// parameterized monoids (e.g. "tf2" → token filtering with q=2).
struct EvalContext {
  std::map<std::string, std::shared_ptr<Monoid>> extra_monoids;

  Result<const Monoid*> FindMonoid(const std::string& name) const;
};

/// Evaluates `e` under `env`. Comprehensions iterate their generators in
/// order (nested-loop semantics) and fold heads with the monoid's merge.
Result<Value> EvalExpr(const ExprPtr& e, const Env& env, const EvalContext& ctx = {});

/// \brief Evaluates a builtin function by name. Shared with the physical
/// expression compiler so both layers agree on function semantics.
///
/// Supported: prefix, lower, upper, trim, substr, length, contains, concat,
/// split, tokens, levenshtein, similarity, similar, year, month, day, abs,
/// to_string, to_int, distinct, count, avg, is_null.
Result<Value> EvalBuiltin(const std::string& name, const std::vector<Value>& args);

}  // namespace cleanm
