#include "monoid/expr.h"

#include <sstream>

namespace cleanm {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "and";
    case BinaryOp::kOr: return "or";
  }
  return "?";
}

namespace {
ExprPtr Make(ExprKind kind) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  return e;
}
}  // namespace

ExprPtr Const(Value v) {
  auto e = Make(ExprKind::kConst);
  e->literal = std::move(v);
  return e;
}
ExprPtr ConstInt(int64_t v) { return Const(Value(v)); }
ExprPtr ConstDouble(double v) { return Const(Value(v)); }
ExprPtr ConstString(std::string v) { return Const(Value(std::move(v))); }
ExprPtr ConstBool(bool v) { return Const(Value(v)); }

ExprPtr Var(std::string name) {
  auto e = Make(ExprKind::kVar);
  e->name = std::move(name);
  return e;
}

ExprPtr FieldAccess(ExprPtr child, std::string field) {
  auto e = Make(ExprKind::kField);
  e->child = std::move(child);
  e->name = std::move(field);
  return e;
}

ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = Make(ExprKind::kBinary);
  e->bin_op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr Unary(UnaryOp op, ExprPtr child) {
  auto e = Make(ExprKind::kUnary);
  e->un_op = op;
  e->child = std::move(child);
  return e;
}

ExprPtr If(ExprPtr cond, ExprPtr then_e, ExprPtr else_e) {
  auto e = Make(ExprKind::kIf);
  e->cond = std::move(cond);
  e->then_e = std::move(then_e);
  e->else_e = std::move(else_e);
  return e;
}

ExprPtr Call(std::string fn, std::vector<ExprPtr> args) {
  auto e = Make(ExprKind::kCall);
  e->name = std::move(fn);
  e->args = std::move(args);
  return e;
}

ExprPtr Record(std::vector<std::string> names, std::vector<ExprPtr> values) {
  CLEANM_CHECK(names.size() == values.size());
  auto e = Make(ExprKind::kRecord);
  e->field_names = std::move(names);
  e->field_values = std::move(values);
  return e;
}

ExprPtr Comprehension(std::string monoid, ExprPtr head, std::vector<Qualifier> quals) {
  auto e = Make(ExprKind::kComprehension);
  e->comp.monoid = std::move(monoid);
  e->comp.head = std::move(head);
  e->comp.qualifiers = std::move(quals);
  return e;
}

Qualifier Generator(std::string var, ExprPtr source) {
  return {Qualifier::Kind::kGenerator, std::move(var), std::move(source)};
}
Qualifier Predicate(ExprPtr pred) {
  return {Qualifier::Kind::kPredicate, "", std::move(pred)};
}
Qualifier Binding(std::string var, ExprPtr expr) {
  return {Qualifier::Kind::kBinding, std::move(var), std::move(expr)};
}

ExprPtr CloneExpr(const ExprPtr& e) {
  if (!e) return nullptr;
  auto c = std::make_shared<Expr>();
  c->kind = e->kind;
  c->src_pos = e->src_pos;
  c->literal = e->literal;
  c->name = e->name;
  c->child = CloneExpr(e->child);
  c->bin_op = e->bin_op;
  c->un_op = e->un_op;
  c->lhs = CloneExpr(e->lhs);
  c->rhs = CloneExpr(e->rhs);
  c->cond = CloneExpr(e->cond);
  c->then_e = CloneExpr(e->then_e);
  c->else_e = CloneExpr(e->else_e);
  for (const auto& a : e->args) c->args.push_back(CloneExpr(a));
  c->field_names = e->field_names;
  for (const auto& v : e->field_values) c->field_values.push_back(CloneExpr(v));
  c->comp.monoid = e->comp.monoid;
  c->comp.head = CloneExpr(e->comp.head);
  for (const auto& q : e->comp.qualifiers) {
    c->comp.qualifiers.push_back({q.kind, q.var, CloneExpr(q.expr)});
  }
  return c;
}

bool ExprEquals(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case ExprKind::kConst: return a->literal.Equals(b->literal);
    case ExprKind::kVar: return a->name == b->name;
    case ExprKind::kField:
      return a->name == b->name && ExprEquals(a->child, b->child);
    case ExprKind::kBinary:
      return a->bin_op == b->bin_op && ExprEquals(a->lhs, b->lhs) &&
             ExprEquals(a->rhs, b->rhs);
    case ExprKind::kUnary:
      return a->un_op == b->un_op && ExprEquals(a->child, b->child);
    case ExprKind::kIf:
      return ExprEquals(a->cond, b->cond) && ExprEquals(a->then_e, b->then_e) &&
             ExprEquals(a->else_e, b->else_e);
    case ExprKind::kCall: {
      if (a->name != b->name || a->args.size() != b->args.size()) return false;
      for (size_t i = 0; i < a->args.size(); i++) {
        if (!ExprEquals(a->args[i], b->args[i])) return false;
      }
      return true;
    }
    case ExprKind::kRecord: {
      if (a->field_names != b->field_names) return false;
      for (size_t i = 0; i < a->field_values.size(); i++) {
        if (!ExprEquals(a->field_values[i], b->field_values[i])) return false;
      }
      return true;
    }
    case ExprKind::kComprehension: {
      if (a->comp.monoid != b->comp.monoid) return false;
      if (!ExprEquals(a->comp.head, b->comp.head)) return false;
      if (a->comp.qualifiers.size() != b->comp.qualifiers.size()) return false;
      for (size_t i = 0; i < a->comp.qualifiers.size(); i++) {
        const auto& qa = a->comp.qualifiers[i];
        const auto& qb = b->comp.qualifiers[i];
        if (qa.kind != qb.kind || qa.var != qb.var || !ExprEquals(qa.expr, qb.expr)) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

namespace {
void CollectFreeVars(const ExprPtr& e, std::set<std::string>* bound,
                     std::set<std::string>* free) {
  if (!e) return;
  switch (e->kind) {
    case ExprKind::kConst: return;
    case ExprKind::kVar:
      if (!bound->count(e->name)) free->insert(e->name);
      return;
    case ExprKind::kField: return CollectFreeVars(e->child, bound, free);
    case ExprKind::kBinary:
      CollectFreeVars(e->lhs, bound, free);
      CollectFreeVars(e->rhs, bound, free);
      return;
    case ExprKind::kUnary: return CollectFreeVars(e->child, bound, free);
    case ExprKind::kIf:
      CollectFreeVars(e->cond, bound, free);
      CollectFreeVars(e->then_e, bound, free);
      CollectFreeVars(e->else_e, bound, free);
      return;
    case ExprKind::kCall:
      for (const auto& a : e->args) CollectFreeVars(a, bound, free);
      return;
    case ExprKind::kRecord:
      for (const auto& v : e->field_values) CollectFreeVars(v, bound, free);
      return;
    case ExprKind::kComprehension: {
      // Qualifiers bind variables for the rest of the body and the head.
      std::set<std::string> inner_bound = *bound;
      for (const auto& q : e->comp.qualifiers) {
        CollectFreeVars(q.expr, &inner_bound, free);
        if (q.kind != Qualifier::Kind::kPredicate) inner_bound.insert(q.var);
      }
      CollectFreeVars(e->comp.head, &inner_bound, free);
      return;
    }
  }
}
}  // namespace

std::set<std::string> FreeVars(const ExprPtr& e) {
  std::set<std::string> bound, free;
  CollectFreeVars(e, &bound, &free);
  return free;
}

ExprPtr Substitute(const ExprPtr& e, const std::string& var, const ExprPtr& replacement) {
  if (!e) return nullptr;
  switch (e->kind) {
    case ExprKind::kConst: return CloneExpr(e);
    case ExprKind::kVar:
      return e->name == var ? CloneExpr(replacement) : CloneExpr(e);
    case ExprKind::kField:
      return FieldAccess(Substitute(e->child, var, replacement), e->name);
    case ExprKind::kBinary:
      return Binary(e->bin_op, Substitute(e->lhs, var, replacement),
                    Substitute(e->rhs, var, replacement));
    case ExprKind::kUnary:
      return Unary(e->un_op, Substitute(e->child, var, replacement));
    case ExprKind::kIf:
      return If(Substitute(e->cond, var, replacement),
                Substitute(e->then_e, var, replacement),
                Substitute(e->else_e, var, replacement));
    case ExprKind::kCall: {
      std::vector<ExprPtr> args;
      for (const auto& a : e->args) args.push_back(Substitute(a, var, replacement));
      return Call(e->name, std::move(args));
    }
    case ExprKind::kRecord: {
      std::vector<ExprPtr> values;
      for (const auto& v : e->field_values) values.push_back(Substitute(v, var, replacement));
      return Record(e->field_names, std::move(values));
    }
    case ExprKind::kComprehension: {
      std::vector<Qualifier> quals;
      bool shadowed = false;
      for (const auto& q : e->comp.qualifiers) {
        // Substitute into the qualifier's expression unless an earlier
        // qualifier already re-bound `var` (shadowing).
        ExprPtr qe = shadowed ? CloneExpr(q.expr) : Substitute(q.expr, var, replacement);
        quals.push_back({q.kind, q.var, std::move(qe)});
        if (q.kind != Qualifier::Kind::kPredicate && q.var == var) shadowed = true;
      }
      ExprPtr head = shadowed ? CloneExpr(e->comp.head)
                              : Substitute(e->comp.head, var, replacement);
      return Comprehension(e->comp.monoid, std::move(head), std::move(quals));
    }
  }
  return nullptr;
}

namespace {
void Print(const ExprPtr& e, std::ostringstream& os) {
  if (!e) {
    os << "<null>";
    return;
  }
  switch (e->kind) {
    case ExprKind::kConst:
      if (e->literal.type() == ValueType::kString) {
        os << '"' << e->literal.AsString() << '"';
      } else {
        os << e->literal.ToString();
      }
      return;
    case ExprKind::kVar: os << e->name; return;
    case ExprKind::kField:
      Print(e->child, os);
      os << '.' << e->name;
      return;
    case ExprKind::kBinary:
      os << '(';
      Print(e->lhs, os);
      os << ' ' << BinaryOpName(e->bin_op) << ' ';
      Print(e->rhs, os);
      os << ')';
      return;
    case ExprKind::kUnary:
      os << (e->un_op == UnaryOp::kNot ? "not " : "-");
      Print(e->child, os);
      return;
    case ExprKind::kIf:
      os << "if ";
      Print(e->cond, os);
      os << " then ";
      Print(e->then_e, os);
      os << " else ";
      Print(e->else_e, os);
      return;
    case ExprKind::kCall: {
      os << e->name << '(';
      for (size_t i = 0; i < e->args.size(); i++) {
        if (i) os << ", ";
        Print(e->args[i], os);
      }
      os << ')';
      return;
    }
    case ExprKind::kRecord: {
      os << '{';
      for (size_t i = 0; i < e->field_names.size(); i++) {
        if (i) os << ", ";
        os << e->field_names[i] << ": ";
        Print(e->field_values[i], os);
      }
      os << '}';
      return;
    }
    case ExprKind::kComprehension: {
      os << "for(";
      bool first = true;
      for (const auto& q : e->comp.qualifiers) {
        if (!first) os << ", ";
        first = false;
        switch (q.kind) {
          case Qualifier::Kind::kGenerator:
            os << q.var << " <- ";
            break;
          case Qualifier::Kind::kBinding:
            os << q.var << " := ";
            break;
          case Qualifier::Kind::kPredicate:
            break;
        }
        Print(q.expr, os);
      }
      os << ") yield " << e->comp.monoid << ' ';
      Print(e->comp.head, os);
      return;
    }
  }
}
}  // namespace

std::string Expr::ToString() const {
  std::ostringstream os;
  // Wrap `this` in a non-owning shared_ptr for the recursive printer.
  ExprPtr self(const_cast<Expr*>(this), [](Expr*) {});
  Print(self, os);
  return os.str();
}

}  // namespace cleanm
