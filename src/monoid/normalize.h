// Comprehension normalization (Section 4.2, "Domain-agnostic
// optimizations"), after Fegaras & Maier's normalization algorithm.
//
// The normalizer rewrites a comprehension into canonical form by repeatedly
// applying these rules until fixpoint:
//
//   R1 (beta reduction)      (..., v := e, rest) — inline e for v in rest
//   R2 (singleton generator) v <- [e]            — becomes v := e
//   R3 (empty generator)     v <- []             — comprehension is Z⊕
//   R4 (generator unnesting) v <- ⊎{e | q*}      — splice q*, bind v := e
//   R5 (existential unnest)  some{p | q*} used as a predicate of an
//                            idempotent-monoid comprehension — splice q*, p
//   R6 (predicate simplif.)  true drops; false collapses to Z⊕
//   R7 (constant folding)    binary/unary/if/builtin calls over literals
//   R8 (if-splitting)        ⊕{if c then a else b | q*} splits into two
//                            comprehensions merged with ⊕ (sum and
//                            collection monoids)
//   R9 (filter pushdown)     each predicate moves to the earliest position
//                            where its free variables are bound
//
// Rules R1–R8 preserve the interpreter semantics exactly; R9 preserves them
// for the (pure) expression language of CleanM. The property tests in
// tests/monoid_test.cc evaluate random comprehensions before and after
// normalization and require identical results.
#pragma once

#include "monoid/expr.h"

namespace cleanm {

/// Counters describing which rules fired (for tests and EXPLAIN output).
struct NormalizeStats {
  int beta_reductions = 0;
  int singleton_generators = 0;
  int empty_generators = 0;
  int generator_unnestings = 0;
  int existential_unnestings = 0;
  int predicate_simplifications = 0;
  int constants_folded = 0;
  int if_splits = 0;
  int filters_pushed = 0;

  int Total() const {
    return beta_reductions + singleton_generators + empty_generators +
           generator_unnestings + existential_unnestings +
           predicate_simplifications + constants_folded + if_splits + filters_pushed;
  }
};

/// Normalizes `e` to fixpoint. The returned expression is a fresh tree;
/// the input is not modified. `stats`, if non-null, accumulates rule
/// applications.
ExprPtr Normalize(const ExprPtr& e, NormalizeStats* stats = nullptr);

}  // namespace cleanm
