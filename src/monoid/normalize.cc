#include "monoid/normalize.h"

#include <algorithm>

#include "monoid/eval.h"
#include "monoid/monoid.h"

namespace cleanm {

namespace {

bool IsConst(const ExprPtr& e) { return e && e->kind == ExprKind::kConst; }

bool IsConstBool(const ExprPtr& e, bool value) {
  return IsConst(e) && e->literal.type() == ValueType::kBool &&
         e->literal.AsBool() == value;
}

/// Is `name` an idempotent registered monoid? (needed for R5)
bool MonoidIdempotent(const std::string& name) {
  auto m = LookupMonoid(name);
  return m.ok() && m.value()->idempotent();
}

/// The zero element of a registered monoid, as a literal.
ExprPtr MonoidZero(const std::string& name) {
  auto m = LookupMonoid(name);
  if (!m.ok()) return nullptr;  // unknown (e.g. parameterized grouping monoid)
  return Const(m.value()->zero());
}

/// Can the elements of an inner `inner` collection comprehension be spliced
/// into an outer `outer` comprehension (R4)? Bags and lists splice into
/// anything; sets only into idempotent consumers (splicing a set into a bag
/// would change multiplicities).
bool CanUnnestInto(const std::string& inner, const std::string& outer) {
  if (inner == "bag" || inner == "list") return true;
  if (inner == "set") return MonoidIdempotent(outer) || outer == "set";
  return false;
}

/// One bottom-up rewrite pass. Returns the (possibly) rewritten node and
/// sets *changed when any rule fired.
ExprPtr Rewrite(const ExprPtr& e, NormalizeStats* stats, bool* changed);

ExprPtr RewriteChildren(const ExprPtr& e, NormalizeStats* stats, bool* changed) {
  switch (e->kind) {
    case ExprKind::kConst:
    case ExprKind::kVar:
      return e;
    case ExprKind::kField:
      return FieldAccess(Rewrite(e->child, stats, changed), e->name);
    case ExprKind::kBinary:
      return Binary(e->bin_op, Rewrite(e->lhs, stats, changed),
                    Rewrite(e->rhs, stats, changed));
    case ExprKind::kUnary:
      return Unary(e->un_op, Rewrite(e->child, stats, changed));
    case ExprKind::kIf:
      return If(Rewrite(e->cond, stats, changed), Rewrite(e->then_e, stats, changed),
                Rewrite(e->else_e, stats, changed));
    case ExprKind::kCall: {
      std::vector<ExprPtr> args;
      for (const auto& a : e->args) args.push_back(Rewrite(a, stats, changed));
      return Call(e->name, std::move(args));
    }
    case ExprKind::kRecord: {
      std::vector<ExprPtr> values;
      for (const auto& v : e->field_values) values.push_back(Rewrite(v, stats, changed));
      return Record(e->field_names, std::move(values));
    }
    case ExprKind::kComprehension: {
      std::vector<Qualifier> quals;
      for (const auto& q : e->comp.qualifiers) {
        quals.push_back({q.kind, q.var, Rewrite(q.expr, stats, changed)});
      }
      return Comprehension(e->comp.monoid, Rewrite(e->comp.head, stats, changed),
                           std::move(quals));
    }
  }
  return e;
}

/// R7: folds operations whose operands are all literals. Builtin calls are
/// pure, so folding them is sound.
ExprPtr TryConstantFold(const ExprPtr& e, NormalizeStats* stats, bool* changed) {
  auto fold = [&](const ExprPtr& node) -> ExprPtr {
    Env empty_env;
    auto result = EvalExpr(node, empty_env);
    if (!result.ok()) return node;  // e.g. division by zero: leave for runtime
    if (stats) stats->constants_folded++;
    *changed = true;
    return Const(result.MoveValue());
  };
  switch (e->kind) {
    case ExprKind::kBinary:
      if (IsConst(e->lhs) && IsConst(e->rhs)) return fold(e);
      // Boolean identities with one constant side.
      if (e->bin_op == BinaryOp::kAnd) {
        if (IsConstBool(e->lhs, true)) { *changed = true; if (stats) stats->constants_folded++; return e->rhs; }
        if (IsConstBool(e->rhs, true)) { *changed = true; if (stats) stats->constants_folded++; return e->lhs; }
        if (IsConstBool(e->lhs, false) || IsConstBool(e->rhs, false)) {
          *changed = true;
          if (stats) stats->constants_folded++;
          return ConstBool(false);
        }
      }
      if (e->bin_op == BinaryOp::kOr) {
        if (IsConstBool(e->lhs, false)) { *changed = true; if (stats) stats->constants_folded++; return e->rhs; }
        if (IsConstBool(e->rhs, false)) { *changed = true; if (stats) stats->constants_folded++; return e->lhs; }
        if (IsConstBool(e->lhs, true) || IsConstBool(e->rhs, true)) {
          *changed = true;
          if (stats) stats->constants_folded++;
          return ConstBool(true);
        }
      }
      return e;
    case ExprKind::kUnary:
      if (IsConst(e->child)) return fold(e);
      return e;
    case ExprKind::kIf:
      if (IsConstBool(e->cond, true)) {
        *changed = true;
        if (stats) stats->constants_folded++;
        return e->then_e;
      }
      if (IsConstBool(e->cond, false)) {
        *changed = true;
        if (stats) stats->constants_folded++;
        return e->else_e;
      }
      return e;
    case ExprKind::kCall: {
      for (const auto& a : e->args) {
        if (!IsConst(a)) return e;
      }
      return fold(e);
    }
    default:
      return e;
  }
}

/// Applies the comprehension-body rules (R1–R6, R8, R9) to one
/// comprehension node.
ExprPtr RewriteComprehension(const ExprPtr& e, NormalizeStats* stats, bool* changed) {
  const std::string& monoid = e->comp.monoid;
  const auto& quals = e->comp.qualifiers;

  for (size_t i = 0; i < quals.size(); i++) {
    const Qualifier& q = quals[i];

    // R1: inline let-bindings into everything downstream.
    if (q.kind == Qualifier::Kind::kBinding) {
      std::vector<Qualifier> rest(quals.begin(), quals.begin() + i);
      ExprPtr head = e->comp.head;
      bool shadowed = false;
      for (size_t j = i + 1; j < quals.size(); j++) {
        const Qualifier& qj = quals[j];
        ExprPtr qe = shadowed ? qj.expr : Substitute(qj.expr, q.var, q.expr);
        rest.push_back({qj.kind, qj.var, std::move(qe)});
        if (qj.kind != Qualifier::Kind::kPredicate && qj.var == q.var) shadowed = true;
      }
      if (!shadowed) head = Substitute(head, q.var, q.expr);
      if (stats) stats->beta_reductions++;
      *changed = true;
      return Comprehension(monoid, std::move(head), std::move(rest));
    }

    if (q.kind == Qualifier::Kind::kGenerator) {
      // R2/R3: generator over a literal collection.
      if (IsConst(q.expr) && q.expr->literal.type() == ValueType::kList) {
        const auto& list = q.expr->literal.AsList();
        if (list.empty()) {
          ExprPtr zero = MonoidZero(monoid);
          if (zero) {
            if (stats) stats->empty_generators++;
            *changed = true;
            return zero;
          }
        } else if (list.size() == 1) {
          std::vector<Qualifier> rest(quals.begin(), quals.begin() + i);
          rest.push_back(Binding(q.var, Const(list[0])));
          rest.insert(rest.end(), quals.begin() + i + 1, quals.end());
          if (stats) stats->singleton_generators++;
          *changed = true;
          return Comprehension(monoid, e->comp.head, std::move(rest));
        }
      }
      // R4: generator over a nested collection comprehension.
      if (q.expr->kind == ExprKind::kComprehension &&
          CanUnnestInto(q.expr->comp.monoid, monoid)) {
        const auto& inner = q.expr->comp;
        std::vector<Qualifier> rest(quals.begin(), quals.begin() + i);
        for (const auto& iq : inner.qualifiers) rest.push_back(iq);
        rest.push_back(Binding(q.var, inner.head));
        rest.insert(rest.end(), quals.begin() + i + 1, quals.end());
        if (stats) stats->generator_unnestings++;
        *changed = true;
        return Comprehension(monoid, e->comp.head, std::move(rest));
      }
    }

    if (q.kind == Qualifier::Kind::kPredicate) {
      // R6: constant predicates.
      if (IsConstBool(q.expr, true)) {
        std::vector<Qualifier> rest(quals.begin(), quals.begin() + i);
        rest.insert(rest.end(), quals.begin() + i + 1, quals.end());
        if (stats) stats->predicate_simplifications++;
        *changed = true;
        return Comprehension(monoid, e->comp.head, std::move(rest));
      }
      if (IsConstBool(q.expr, false)) {
        ExprPtr zero = MonoidZero(monoid);
        if (zero) {
          if (stats) stats->predicate_simplifications++;
          *changed = true;
          return zero;
        }
      }
      // R5: existential quantification some{p | q*} as a predicate of an
      // idempotent comprehension unnests into the body.
      if (q.expr->kind == ExprKind::kComprehension && q.expr->comp.monoid == "some" &&
          MonoidIdempotent(monoid)) {
        const auto& inner = q.expr->comp;
        std::vector<Qualifier> rest(quals.begin(), quals.begin() + i);
        for (const auto& iq : inner.qualifiers) rest.push_back(iq);
        rest.push_back(Predicate(inner.head));
        rest.insert(rest.end(), quals.begin() + i + 1, quals.end());
        if (stats) stats->existential_unnestings++;
        *changed = true;
        return Comprehension(monoid, e->comp.head, std::move(rest));
      }
    }
  }

  // R8: if-splitting in the head. ⊕{if c then a else b | q} becomes the
  // merge of two comprehensions with complementary predicates. Expressible
  // for monoids whose merge has an expression form: + for sum, bag_concat
  // for the collection monoids.
  if (e->comp.head->kind == ExprKind::kIf) {
    const auto& h = e->comp.head;
    auto make_arm = [&](ExprPtr arm_head, ExprPtr pred) {
      std::vector<Qualifier> arm_quals = quals;
      arm_quals.push_back(Predicate(std::move(pred)));
      return Comprehension(monoid, std::move(arm_head), std::move(arm_quals));
    };
    ExprPtr then_arm = make_arm(h->then_e, h->cond);
    ExprPtr else_arm = make_arm(h->else_e, Unary(UnaryOp::kNot, h->cond));
    if (monoid == "sum" || monoid == "count") {
      if (stats) stats->if_splits++;
      *changed = true;
      return Binary(BinaryOp::kAdd, std::move(then_arm), std::move(else_arm));
    }
    if (IsCollectionMonoid(monoid)) {
      if (stats) stats->if_splits++;
      *changed = true;
      return Call(monoid == "set" ? "set_union" : "bag_concat",
                  {std::move(then_arm), std::move(else_arm)});
    }
  }

  // R9: filter pushdown. A predicate moves to just after its *dependency
  // binder*: the latest binder preceding it (in original order) that binds
  // one of its free variables. Using the latest *preceding* binder keeps
  // shadowed variables correct. Predicates depending only on outer
  // variables move to the front.
  {
    // dep[i] for each predicate at index i: index of its dependency binder,
    // or SIZE_MAX when it has none.
    std::vector<std::vector<Qualifier>> after_binder(quals.size() + 1);
    std::vector<Qualifier> front;
    bool any_pred = false;
    for (size_t i = 0; i < quals.size(); i++) {
      if (quals[i].kind != Qualifier::Kind::kPredicate) continue;
      any_pred = true;
      const auto free = FreeVars(quals[i].expr);
      size_t dep = SIZE_MAX;
      for (size_t j = 0; j < i; j++) {
        if (quals[j].kind == Qualifier::Kind::kPredicate) continue;
        if (free.count(quals[j].var)) dep = (dep == SIZE_MAX || j > dep) ? j : dep;
      }
      if (dep == SIZE_MAX) {
        front.push_back(quals[i]);
      } else {
        after_binder[dep].push_back(quals[i]);
      }
    }
    if (any_pred) {
      std::vector<Qualifier> reordered = std::move(front);
      for (size_t i = 0; i < quals.size(); i++) {
        if (quals[i].kind == Qualifier::Kind::kPredicate) continue;
        reordered.push_back(quals[i]);
        for (auto& p : after_binder[i]) reordered.push_back(std::move(p));
      }
      // Fire only if the order actually changed.
      bool same = reordered.size() == quals.size();
      for (size_t i = 0; same && i < quals.size(); i++) {
        same = reordered[i].kind == quals[i].kind && reordered[i].var == quals[i].var &&
               ExprEquals(reordered[i].expr, quals[i].expr);
      }
      if (!same) {
        if (stats) stats->filters_pushed++;
        *changed = true;
        return Comprehension(monoid, e->comp.head, std::move(reordered));
      }
    }
  }

  return e;
}

ExprPtr Rewrite(const ExprPtr& e, NormalizeStats* stats, bool* changed) {
  if (!e) return e;
  ExprPtr node = RewriteChildren(e, stats, changed);
  node = TryConstantFold(node, stats, changed);
  if (node->kind == ExprKind::kComprehension) {
    node = RewriteComprehension(node, stats, changed);
  }
  return node;
}

}  // namespace

ExprPtr Normalize(const ExprPtr& e, NormalizeStats* stats) {
  ExprPtr current = CloneExpr(e);
  // Fixpoint with a safety cap; each pass is a full bottom-up sweep.
  for (int iter = 0; iter < 64; iter++) {
    bool changed = false;
    current = Rewrite(current, stats, &changed);
    if (!changed) break;
  }
  return current;
}

}  // namespace cleanm
