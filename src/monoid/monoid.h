// The monoid registry: the algebraic structures CleanM comprehensions
// aggregate with (Section 4.1), including the domain-specific grouping
// monoids of Section 4.3 (token filtering, k-means center assignment).
//
// A monoid here is (zero, unit, merge) over runtime Values. merge must be
// associative with zero as identity — the properties that make monoid
// comprehensions inherently parallelizable (partial results from different
// partitions merge in any order). The property tests in
// tests/monoid_test.cc check these laws on every registered monoid.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "storage/value.h"

namespace cleanm {

/// \brief Runtime monoid over Values.
class Monoid {
 public:
  Monoid(std::string name, Value zero, std::function<Value(const Value&)> unit,
         std::function<Value(Value, const Value&)> merge, bool commutative,
         bool idempotent)
      : name_(std::move(name)),
        zero_(std::move(zero)),
        unit_(std::move(unit)),
        merge_(std::move(merge)),
        commutative_(commutative),
        idempotent_(idempotent) {}

  const std::string& name() const { return name_; }
  /// The identity element Z⊕, deep-copied: merge is allowed to mutate its
  /// first argument in place, so callers always receive fresh storage.
  Value zero() const { return zero_.DeepCopy(); }
  /// Lifts one element into the monoid's carrier (U⊕).
  Value Unit(const Value& v) const { return unit_(v); }
  /// The associative ⊕. Consumes (and may mutate) its first argument.
  Value Merge(Value a, const Value& b) const { return merge_(std::move(a), b); }
  /// Convenience: merge an element into an accumulator via the unit.
  Value Accumulate(Value acc, const Value& element) const {
    return Merge(std::move(acc), Unit(element));
  }
  bool commutative() const { return commutative_; }
  bool idempotent() const { return idempotent_; }

 private:
  std::string name_;
  Value zero_;
  std::function<Value(const Value&)> unit_;
  std::function<Value(Value, const Value&)> merge_;
  bool commutative_;
  bool idempotent_;
};

/// Looks up a monoid by name. Registered: "sum", "prod", "max", "min",
/// "some" (∨), "all" (∧), "count", "bag", "list", "set".
/// Returns an error for unknown names.
Result<const Monoid*> LookupMonoid(const std::string& name);

/// True if `name` denotes a collection monoid (bag/list/set), whose
/// comprehensions produce collections rather than scalars.
bool IsCollectionMonoid(const std::string& name);

// ---- Domain-specific grouping monoids (Section 4.3) ----
//
// A grouping monoid's carrier is a dictionary {key → bag of elements},
// encoded as a Value struct. Its unit maps one string to the dictionary of
// its group keys; its merge unions dictionaries, concatenating bags on key
// collision. Associativity holds because bag concat and dictionary union
// are associative — this is the paper's "tokenize(a, tokenize(b, c)) =
// tokenize(tokenize(a, b), c)" law, checked by the property tests.

/// Token-filtering monoid: unit(str) = {(g, {str}) | g ∈ distinct q-grams}.
std::shared_ptr<Monoid> MakeTokenFilterMonoid(size_t q);

/// K-means assignment monoid: unit(str) = {(center_i, {str})} for every
/// sampled center within `delta` of the minimal edit distance.
std::shared_ptr<Monoid> MakeKMeansMonoid(std::vector<std::string> centers, double delta);

/// Exact-key grouping monoid: unit(v) = {(v, {v})}; used for equality
/// blocking (e.g. FD groups).
std::shared_ptr<Monoid> MakeExactGroupMonoid();

}  // namespace cleanm
