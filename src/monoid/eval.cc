#include "monoid/eval.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>

#include "text/similarity.h"

namespace cleanm {

Result<const Monoid*> EvalContext::FindMonoid(const std::string& name) const {
  auto it = extra_monoids.find(name);
  if (it != extra_monoids.end()) return it->second.get();
  return LookupMonoid(name);
}

namespace {

Result<Value> EvalBinary(BinaryOp op, const Value& l, const Value& r) {
  switch (op) {
    case BinaryOp::kAdd:
      if (l.type() == ValueType::kString && r.type() == ValueType::kString) {
        return Value(l.AsString() + r.AsString());
      }
      [[fallthrough]];
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv: {
      if (!l.is_numeric() || !r.is_numeric()) {
        return Status::TypeError("arithmetic on non-numeric values");
      }
      const double a = l.ToDouble(), b = r.ToDouble();
      double result = 0;
      switch (op) {
        case BinaryOp::kAdd: result = a + b; break;
        case BinaryOp::kSub: result = a - b; break;
        case BinaryOp::kMul: result = a * b; break;
        case BinaryOp::kDiv:
          if (b == 0) return Status::InvalidArgument("division by zero");
          result = a / b;
          break;
        default: break;
      }
      if (l.type() == ValueType::kInt && r.type() == ValueType::kInt &&
          op != BinaryOp::kDiv) {
        return Value(static_cast<int64_t>(result));
      }
      return Value(result);
    }
    case BinaryOp::kEq: return Value(l.Compare(r) == 0);
    case BinaryOp::kNe: return Value(l.Compare(r) != 0);
    case BinaryOp::kLt: return Value(l.Compare(r) < 0);
    case BinaryOp::kLe: return Value(l.Compare(r) <= 0);
    case BinaryOp::kGt: return Value(l.Compare(r) > 0);
    case BinaryOp::kGe: return Value(l.Compare(r) >= 0);
    case BinaryOp::kAnd:
    case BinaryOp::kOr: {
      if (l.type() != ValueType::kBool || r.type() != ValueType::kBool) {
        return Status::TypeError("boolean operator on non-boolean values");
      }
      return Value(op == BinaryOp::kAnd ? (l.AsBool() && r.AsBool())
                                        : (l.AsBool() || r.AsBool()));
    }
  }
  return Status::Internal("unhandled binary op");
}

/// Recursive comprehension loop: processes qualifiers[qi..] under env,
/// folding head values into *acc.
Status RunComprehension(const ComprehensionExpr& comp, size_t qi, Env env,
                        const EvalContext& ctx, const Monoid* monoid, Value* acc) {
  if (qi == comp.qualifiers.size()) {
    auto head = EvalExpr(comp.head, env, ctx);
    if (!head.ok()) return head.status();
    *acc = monoid->Accumulate(std::move(*acc), head.value());
    return Status::OK();
  }
  const Qualifier& q = comp.qualifiers[qi];
  switch (q.kind) {
    case Qualifier::Kind::kGenerator: {
      auto source = EvalExpr(q.expr, env, ctx);
      if (!source.ok()) return source.status();
      if (source.value().is_null()) return Status::OK();  // empty source
      if (source.value().type() != ValueType::kList) {
        return Status::TypeError("generator source is not a collection: " +
                                 q.expr->ToString());
      }
      for (const auto& element : source.value().AsList()) {
        Env inner = env;
        inner[q.var] = element;
        CLEANM_RETURN_NOT_OK(
            RunComprehension(comp, qi + 1, std::move(inner), ctx, monoid, acc));
      }
      return Status::OK();
    }
    case Qualifier::Kind::kPredicate: {
      auto pred = EvalExpr(q.expr, env, ctx);
      if (!pred.ok()) return pred.status();
      if (pred.value().type() != ValueType::kBool) {
        return Status::TypeError("predicate did not evaluate to bool: " +
                                 q.expr->ToString());
      }
      if (!pred.value().AsBool()) return Status::OK();
      return RunComprehension(comp, qi + 1, std::move(env), ctx, monoid, acc);
    }
    case Qualifier::Kind::kBinding: {
      auto bound = EvalExpr(q.expr, env, ctx);
      if (!bound.ok()) return bound.status();
      env[q.var] = bound.MoveValue();
      return RunComprehension(comp, qi + 1, std::move(env), ctx, monoid, acc);
    }
  }
  return Status::Internal("unhandled qualifier kind");
}

}  // namespace

Result<Value> EvalExpr(const ExprPtr& e, const Env& env, const EvalContext& ctx) {
  if (!e) return Status::Internal("null expression");
  switch (e->kind) {
    case ExprKind::kConst: return e->literal;
    case ExprKind::kVar: {
      auto it = env.find(e->name);
      if (it == env.end()) return Status::KeyError("unbound variable '" + e->name + "'");
      return it->second;
    }
    case ExprKind::kField: {
      CLEANM_ASSIGN_OR_RETURN(Value base, EvalExpr(e->child, env, ctx));
      return base.GetField(e->name);
    }
    case ExprKind::kBinary: {
      // Short-circuit boolean operators.
      if (e->bin_op == BinaryOp::kAnd || e->bin_op == BinaryOp::kOr) {
        CLEANM_ASSIGN_OR_RETURN(Value l, EvalExpr(e->lhs, env, ctx));
        if (l.type() != ValueType::kBool) {
          return Status::TypeError("boolean operator on non-boolean value");
        }
        if (e->bin_op == BinaryOp::kAnd && !l.AsBool()) return Value(false);
        if (e->bin_op == BinaryOp::kOr && l.AsBool()) return Value(true);
        return EvalExpr(e->rhs, env, ctx);
      }
      CLEANM_ASSIGN_OR_RETURN(Value l, EvalExpr(e->lhs, env, ctx));
      CLEANM_ASSIGN_OR_RETURN(Value r, EvalExpr(e->rhs, env, ctx));
      return EvalBinary(e->bin_op, l, r);
    }
    case ExprKind::kUnary: {
      CLEANM_ASSIGN_OR_RETURN(Value v, EvalExpr(e->child, env, ctx));
      if (e->un_op == UnaryOp::kNot) {
        if (v.type() != ValueType::kBool) return Status::TypeError("not on non-bool");
        return Value(!v.AsBool());
      }
      if (!v.is_numeric()) return Status::TypeError("negation of non-numeric");
      if (v.type() == ValueType::kInt) return Value(-v.AsInt());
      return Value(-v.AsDouble());
    }
    case ExprKind::kIf: {
      CLEANM_ASSIGN_OR_RETURN(Value c, EvalExpr(e->cond, env, ctx));
      if (c.type() != ValueType::kBool) return Status::TypeError("if condition not bool");
      return EvalExpr(c.AsBool() ? e->then_e : e->else_e, env, ctx);
    }
    case ExprKind::kCall: {
      std::vector<Value> args;
      args.reserve(e->args.size());
      for (const auto& a : e->args) {
        CLEANM_ASSIGN_OR_RETURN(Value v, EvalExpr(a, env, ctx));
        args.push_back(std::move(v));
      }
      auto r = EvalBuiltin(e->name, args);
      if (!r.ok() && r.status().code() == StatusCode::kKeyError &&
          ctx.call_fallback) {
        return ctx.call_fallback(e->name, args);
      }
      return r;
    }
    case ExprKind::kRecord: {
      ValueStruct fields;
      for (size_t i = 0; i < e->field_names.size(); i++) {
        CLEANM_ASSIGN_OR_RETURN(Value v, EvalExpr(e->field_values[i], env, ctx));
        fields.emplace_back(e->field_names[i], std::move(v));
      }
      return Value(std::move(fields));
    }
    case ExprKind::kComprehension: {
      CLEANM_ASSIGN_OR_RETURN(const Monoid* monoid, ctx.FindMonoid(e->comp.monoid));
      Value acc = monoid->zero();
      CLEANM_RETURN_NOT_OK(RunComprehension(e->comp, 0, env, ctx, monoid, &acc));
      return acc;
    }
  }
  return Status::Internal("unhandled expression kind");
}

namespace {

Status Arity(const std::string& name, const std::vector<Value>& args, size_t n) {
  if (args.size() != n) {
    return Status::InvalidArgument(name + " expects " + std::to_string(n) +
                                   " argument(s), got " + std::to_string(args.size()));
  }
  return Status::OK();
}

Result<std::string> StringArg(const std::string& fn, const Value& v) {
  if (v.is_null()) return std::string();
  if (v.type() != ValueType::kString) {
    return Status::TypeError(fn + ": expected string, got " +
                             std::string(ValueTypeName(v.type())));
  }
  return v.AsString();
}

/// Extracts the date component at `index` from "YYYY-MM-DD".
Result<Value> DatePart(const std::string& fn, const std::vector<Value>& args,
                       int index) {
  CLEANM_RETURN_NOT_OK(Arity(fn, args, 1));
  CLEANM_ASSIGN_OR_RETURN(std::string s, StringArg(fn, args[0]));
  int part = 0;
  size_t pos = 0;
  for (int i = 0; i <= index; i++) {
    const size_t dash = s.find('-', pos);
    const std::string piece =
        (dash == std::string::npos) ? s.substr(pos) : s.substr(pos, dash - pos);
    if (piece.empty()) return Status::InvalidArgument(fn + ": bad date '" + s + "'");
    if (i == index) {
      part = std::atoi(piece.c_str());
      break;
    }
    if (dash == std::string::npos) {
      return Status::InvalidArgument(fn + ": bad date '" + s + "'");
    }
    pos = dash + 1;
  }
  return Value(static_cast<int64_t>(part));
}

}  // namespace

Result<Value> EvalBuiltin(const std::string& name, const std::vector<Value>& args) {
  if (name == "prefix") {
    // prefix(phone): the region prefix — everything before the first '-',
    // or the first three characters when there is no separator.
    CLEANM_RETURN_NOT_OK(Arity(name, args, 1));
    CLEANM_ASSIGN_OR_RETURN(std::string s, StringArg(name, args[0]));
    const size_t dash = s.find('-');
    return Value(dash != std::string::npos ? s.substr(0, dash) : s.substr(0, 3));
  }
  if (name == "lower" || name == "upper") {
    CLEANM_RETURN_NOT_OK(Arity(name, args, 1));
    CLEANM_ASSIGN_OR_RETURN(std::string s, StringArg(name, args[0]));
    std::transform(s.begin(), s.end(), s.begin(), [&](unsigned char c) {
      return name == "lower" ? std::tolower(c) : std::toupper(c);
    });
    return Value(std::move(s));
  }
  if (name == "trim") {
    CLEANM_RETURN_NOT_OK(Arity(name, args, 1));
    CLEANM_ASSIGN_OR_RETURN(std::string s, StringArg(name, args[0]));
    const size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos) return Value(std::string());
    const size_t e = s.find_last_not_of(" \t\r\n");
    return Value(s.substr(b, e - b + 1));
  }
  if (name == "substr") {
    CLEANM_RETURN_NOT_OK(Arity(name, args, 3));
    CLEANM_ASSIGN_OR_RETURN(std::string s, StringArg(name, args[0]));
    const auto start = static_cast<size_t>(std::max<int64_t>(0, args[1].AsInt()));
    const auto len = static_cast<size_t>(std::max<int64_t>(0, args[2].AsInt()));
    if (start >= s.size()) return Value(std::string());
    return Value(s.substr(start, len));
  }
  if (name == "length") {
    CLEANM_RETURN_NOT_OK(Arity(name, args, 1));
    if (args[0].type() == ValueType::kList) {
      return Value(static_cast<int64_t>(args[0].AsList().size()));
    }
    CLEANM_ASSIGN_OR_RETURN(std::string s, StringArg(name, args[0]));
    return Value(static_cast<int64_t>(s.size()));
  }
  if (name == "contains") {
    CLEANM_RETURN_NOT_OK(Arity(name, args, 2));
    CLEANM_ASSIGN_OR_RETURN(std::string s, StringArg(name, args[0]));
    CLEANM_ASSIGN_OR_RETURN(std::string sub, StringArg(name, args[1]));
    return Value(s.find(sub) != std::string::npos);
  }
  if (name == "concat") {
    std::string out;
    for (const auto& a : args) {
      out += a.is_null() ? "" : (a.type() == ValueType::kString ? a.AsString() : a.ToString());
    }
    return Value(std::move(out));
  }
  if (name == "split") {
    CLEANM_RETURN_NOT_OK(Arity(name, args, 2));
    CLEANM_ASSIGN_OR_RETURN(std::string s, StringArg(name, args[0]));
    CLEANM_ASSIGN_OR_RETURN(std::string delim, StringArg(name, args[1]));
    ValueList parts;
    if (delim.empty()) return Status::InvalidArgument("split: empty delimiter");
    size_t pos = 0;
    while (true) {
      const size_t next = s.find(delim, pos);
      if (next == std::string::npos) {
        parts.push_back(Value(s.substr(pos)));
        break;
      }
      parts.push_back(Value(s.substr(pos, next - pos)));
      pos = next + delim.size();
    }
    return Value(std::move(parts));
  }
  if (name == "tokens") {
    CLEANM_RETURN_NOT_OK(Arity(name, args, 2));
    CLEANM_ASSIGN_OR_RETURN(std::string s, StringArg(name, args[0]));
    const auto q = static_cast<size_t>(args[1].AsInt());
    ValueList grams;
    for (auto& g : QGrams(s, q)) grams.push_back(Value(std::move(g)));
    return Value(std::move(grams));
  }
  if (name == "levenshtein") {
    CLEANM_RETURN_NOT_OK(Arity(name, args, 2));
    CLEANM_ASSIGN_OR_RETURN(std::string a, StringArg(name, args[0]));
    CLEANM_ASSIGN_OR_RETURN(std::string b, StringArg(name, args[1]));
    return Value(static_cast<int64_t>(LevenshteinDistance(a, b)));
  }
  if (name == "similarity") {
    CLEANM_RETURN_NOT_OK(Arity(name, args, 3));
    CLEANM_ASSIGN_OR_RETURN(std::string metric_name, StringArg(name, args[0]));
    SimilarityMetric metric;
    if (!ParseSimilarityMetric(metric_name, &metric)) {
      return Status::InvalidArgument("unknown similarity metric '" + metric_name + "'");
    }
    CLEANM_ASSIGN_OR_RETURN(std::string a, StringArg(name, args[1]));
    CLEANM_ASSIGN_OR_RETURN(std::string b, StringArg(name, args[2]));
    return Value(StringSimilarity(metric, a, b));
  }
  if (name == "similar") {
    CLEANM_RETURN_NOT_OK(Arity(name, args, 4));
    CLEANM_ASSIGN_OR_RETURN(std::string metric_name, StringArg(name, args[0]));
    SimilarityMetric metric;
    if (!ParseSimilarityMetric(metric_name, &metric)) {
      return Status::InvalidArgument("unknown similarity metric '" + metric_name + "'");
    }
    CLEANM_ASSIGN_OR_RETURN(std::string a, StringArg(name, args[1]));
    CLEANM_ASSIGN_OR_RETURN(std::string b, StringArg(name, args[2]));
    const double theta = args[3].ToDouble();
    if (metric == SimilarityMetric::kLevenshtein) {
      return Value(LevenshteinSimilarAtLeast(a, b, theta));  // early-exit path
    }
    return Value(StringSimilarity(metric, a, b) >= theta);
  }
  if (name == "year") return DatePart(name, args, 0);
  if (name == "month") return DatePart(name, args, 1);
  if (name == "day") return DatePart(name, args, 2);
  if (name == "abs") {
    CLEANM_RETURN_NOT_OK(Arity(name, args, 1));
    if (args[0].type() == ValueType::kInt) return Value(std::abs(args[0].AsInt()));
    if (args[0].type() == ValueType::kDouble) return Value(std::fabs(args[0].AsDouble()));
    return Status::TypeError("abs: non-numeric argument");
  }
  if (name == "to_string") {
    CLEANM_RETURN_NOT_OK(Arity(name, args, 1));
    return Value(args[0].ToString());
  }
  if (name == "to_int") {
    CLEANM_RETURN_NOT_OK(Arity(name, args, 1));
    if (args[0].type() == ValueType::kInt) return args[0];
    if (args[0].type() == ValueType::kDouble) {
      return Value(static_cast<int64_t>(args[0].AsDouble()));
    }
    CLEANM_ASSIGN_OR_RETURN(std::string s, StringArg(name, args[0]));
    return Value(static_cast<int64_t>(std::strtoll(s.c_str(), nullptr, 10)));
  }
  if (name == "distinct") {
    CLEANM_RETURN_NOT_OK(Arity(name, args, 1));
    if (args[0].type() != ValueType::kList) return Status::TypeError("distinct: not a list");
    ValueList out;
    for (const auto& v : args[0].AsList()) {
      bool found = false;
      for (const auto& existing : out) {
        if (existing.Equals(v)) {
          found = true;
          break;
        }
      }
      if (!found) out.push_back(v);
    }
    return Value(std::move(out));
  }
  if (name == "count") {
    CLEANM_RETURN_NOT_OK(Arity(name, args, 1));
    if (args[0].type() != ValueType::kList) return Status::TypeError("count: not a list");
    return Value(static_cast<int64_t>(args[0].AsList().size()));
  }
  if (name == "avg") {
    CLEANM_RETURN_NOT_OK(Arity(name, args, 1));
    if (args[0].type() != ValueType::kList) return Status::TypeError("avg: not a list");
    const auto& list = args[0].AsList();
    if (list.empty()) return Value::Null();
    double sum = 0;
    size_t n = 0;
    for (const auto& v : list) {
      if (v.is_null()) continue;
      if (!v.is_numeric()) return Status::TypeError("avg: non-numeric element");
      sum += v.ToDouble();
      n++;
    }
    if (n == 0) return Value::Null();
    return Value(sum / static_cast<double>(n));
  }
  if (name == "bag_concat") {
    // ⊕ of the bag/list monoids in expression form (used by if-splitting).
    CLEANM_RETURN_NOT_OK(Arity(name, args, 2));
    if (args[0].type() != ValueType::kList || args[1].type() != ValueType::kList) {
      return Status::TypeError("bag_concat: both arguments must be collections");
    }
    ValueList out = args[0].AsList();
    const auto& other = args[1].AsList();
    out.insert(out.end(), other.begin(), other.end());
    return Value(std::move(out));
  }
  if (name == "set_union") {
    CLEANM_RETURN_NOT_OK(Arity(name, args, 2));
    if (args[0].type() != ValueType::kList || args[1].type() != ValueType::kList) {
      return Status::TypeError("set_union: both arguments must be collections");
    }
    ValueList out = args[0].AsList();
    for (const auto& v : args[1].AsList()) {
      bool found = false;
      for (const auto& existing : out) {
        if (existing.Equals(v)) {
          found = true;
          break;
        }
      }
      if (!found) out.push_back(v);
    }
    return Value(std::move(out));
  }
  if (name == "is_null") {
    CLEANM_RETURN_NOT_OK(Arity(name, args, 1));
    return Value(args[0].is_null());
  }
  return Status::KeyError("unknown builtin function '" + name + "'");
}

namespace {

/// (name, arity) of every builtin; -1 = variadic. Must stay in sync with
/// EvalBuiltin above (the registry test probes each entry through both).
struct BuiltinSig {
  const char* name;
  int arity;
};
constexpr BuiltinSig kBuiltins[] = {
    {"prefix", 1},     {"lower", 1},      {"upper", 1},      {"trim", 1},
    {"substr", 3},     {"length", 1},     {"contains", 2},   {"concat", -1},
    {"split", 2},      {"tokens", 2},     {"levenshtein", 2}, {"similarity", 3},
    {"similar", 4},    {"year", 1},       {"month", 1},      {"day", 1},
    {"abs", 1},        {"to_string", 1},  {"to_int", 1},     {"distinct", 1},
    {"count", 1},      {"avg", 1},        {"bag_concat", 2}, {"set_union", 2},
    {"is_null", 1},
};

}  // namespace

bool IsBuiltinFunction(const std::string& name) {
  for (const auto& sig : kBuiltins) {
    if (name == sig.name) return true;
  }
  return false;
}

Result<int> BuiltinFunctionArity(const std::string& name) {
  for (const auto& sig : kBuiltins) {
    if (name == sig.name) return sig.arity;
  }
  return Status::KeyError("unknown builtin function '" + name + "'");
}

}  // namespace cleanm
