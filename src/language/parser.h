// Recursive-descent parser for CleanM (paper Listing 1).
//
// Keywords are case-insensitive; identifiers keep their case. `token
// filtering` (with a space, as written in the paper's queries) and
// `token_filtering` both parse.
#pragma once

#include <string>

#include "common/status.h"
#include "language/ast.h"

namespace cleanm {

/// Parses one CleanM query. ParseError statuses are positioned: the
/// message carries the 1-based line/column (and raw offset) of the
/// offending token, so a failed CleanDB::Prepare points at the exact spot
/// in multi-line query text.
Result<CleanMQuery> ParseCleanM(const std::string& query);

/// Parses a standalone scalar expression (exposed for tests and the
/// programmatic cleaning API, e.g. "prefix(c.phone)").
Result<ExprPtr> ParseCleanMExpr(const std::string& text);

/// 1-based line/column of byte `offset` within `text` — the same
/// computation behind the parser's positioned kParseError messages, shared
/// so Prepare-time validation (unknown function, arity mismatch) can point
/// at the recorded Expr::src_pos of an AST node.
void LineColumnAt(const std::string& text, size_t offset, size_t* line,
                  size_t* column);

}  // namespace cleanm
