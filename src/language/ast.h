// CleanM abstract syntax (paper Listing 1).
//
//   SELECT [ALL|DISTINCT] <SELECTLIST> <FROMCLAUSE>
//   [WHERECLAUSE][GBCLAUSE[HCLAUSE]][FD|DEDUP|CLUSTER BY]*
//
//   FD        = FD(attributesLHS, attributesRHS)
//   DEDUP     = DEDUP(<op>[,<metric>,<theta>][,<attributes>])
//   CLUSTERBY = CLUSTER BY(<op>[,<metric>,<theta>],<term>)
//
// Scalar expressions reuse the monoid-level Expr IR directly, so the
// desugarer can drop them into comprehensions and algebra plans verbatim.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cluster/filtering.h"
#include "monoid/expr.h"
#include "text/similarity.h"

namespace cleanm {

struct SelectItem {
  bool star = false;   ///< `*`
  ExprPtr expr;        ///< null when star
  std::string alias;   ///< optional AS name
};

struct TableRef {
  std::string table;
  std::string alias;  ///< defaults to the table name
};

/// FD(lhs..., rhs...): functional dependency lhs → rhs.
struct FdClause {
  std::vector<ExprPtr> lhs;
  std::vector<ExprPtr> rhs;
};

/// DEDUP(op[, metric, theta][, attributes]).
struct DedupClause {
  FilteringAlgo op = FilteringAlgo::kTokenFiltering;
  SimilarityMetric metric = SimilarityMetric::kLevenshtein;
  double theta = 0.8;
  std::vector<ExprPtr> attributes;  ///< blocking/filter attributes
};

/// CLUSTER BY(op[, metric, theta], term): term validation against the
/// dictionary table (the second FROM entry).
struct ClusterByClause {
  FilteringAlgo op = FilteringAlgo::kTokenFiltering;
  SimilarityMetric metric = SimilarityMetric::kLevenshtein;
  double theta = 0.8;
  ExprPtr term;
};

struct CleanMQuery {
  bool distinct = false;
  std::vector<SelectItem> select_list;
  std::vector<TableRef> from;
  ExprPtr where;                  ///< may be null
  std::vector<ExprPtr> group_by;  ///< empty when absent
  ExprPtr having;                 ///< may be null
  std::vector<FdClause> fds;
  std::vector<DedupClause> dedups;
  std::vector<ClusterByClause> cluster_bys;

  bool HasCleaningOps() const {
    return !fds.empty() || !dedups.empty() || !cluster_bys.empty();
  }
};

}  // namespace cleanm
