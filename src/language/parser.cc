#include "language/parser.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace cleanm {

namespace {

enum class TokKind { kIdent, kNumber, kString, kPunct, kEnd };

struct Token {
  TokKind kind;
  std::string text;   // identifiers in original case; punct as written
  std::string upper;  // uppercase for keyword matching
  double number = 0;
  bool is_int = false;
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) { Advance(); }

  const Token& Peek() const { return current_; }

  Token Take() {
    Token t = current_;
    Advance();
    return t;
  }

  /// Positioned parse error: line/column (1-based) of the current token,
  /// so Prepare failures point at the offending spot in multi-line query
  /// text, plus the raw offset for tooling.
  Status Error(const std::string& msg) const {
    size_t line = 1, column = 1;
    LineColumnAt(text_, current_.pos, &line, &column);
    const std::string token =
        current_.kind == TokKind::kEnd ? "end of input" : "'" + current_.text + "'";
    return Status::ParseError(msg + " at line " + std::to_string(line) + ", column " +
                              std::to_string(column) + " (near " + token +
                              ", offset " + std::to_string(current_.pos) + ")");
  }

 private:
  void Advance() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      pos_++;
    }
    current_ = Token{TokKind::kEnd, "", "", 0, false, pos_};
    if (pos_ >= text_.size()) return;
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_')) {
        pos_++;
      }
      current_.kind = TokKind::kIdent;
      current_.text = text_.substr(start, pos_ - start);
      current_.upper = current_.text;
      std::transform(current_.upper.begin(), current_.upper.end(),
                     current_.upper.begin(),
                     [](unsigned char ch) { return std::toupper(ch); });
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && pos_ + 1 < text_.size() &&
         std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
      const size_t start = pos_;
      bool has_dot = false;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.')) {
        if (text_[pos_] == '.') has_dot = true;
        pos_++;
      }
      current_.kind = TokKind::kNumber;
      current_.text = text_.substr(start, pos_ - start);
      current_.number = std::strtod(current_.text.c_str(), nullptr);
      current_.is_int = !has_dot;
      return;
    }
    if (c == '\'') {
      pos_++;
      const size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != '\'') pos_++;
      current_.kind = TokKind::kString;
      current_.text = text_.substr(start, pos_ - start);
      if (pos_ < text_.size()) pos_++;  // closing quote
      return;
    }
    // Multi-char punct: <=, >=, <>, !=
    if ((c == '<' || c == '>' || c == '!') && pos_ + 1 < text_.size() &&
        (text_[pos_ + 1] == '=' || (c == '<' && text_[pos_ + 1] == '>'))) {
      current_.kind = TokKind::kPunct;
      current_.text = text_.substr(pos_, 2);
      pos_ += 2;
      return;
    }
    current_.kind = TokKind::kPunct;
    current_.text = std::string(1, c);
    pos_++;
  }

  const std::string& text_;
  size_t pos_ = 0;
  Token current_;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : lex_(text) {}

  Result<CleanMQuery> ParseQuery() {
    CleanMQuery q;
    CLEANM_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    if (IsKeyword("ALL")) {
      lex_.Take();
    } else if (IsKeyword("DISTINCT")) {
      lex_.Take();
      q.distinct = true;
    }
    CLEANM_RETURN_NOT_OK(ParseSelectList(&q));
    CLEANM_RETURN_NOT_OK(ExpectKeyword("FROM"));
    CLEANM_RETURN_NOT_OK(ParseFrom(&q));

    if (IsKeyword("WHERE")) {
      lex_.Take();
      CLEANM_ASSIGN_OR_RETURN(q.where, ParseExpr());
    }
    if (IsKeyword("GROUP")) {
      lex_.Take();
      CLEANM_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        CLEANM_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        q.group_by.push_back(std::move(e));
        if (!IsPunct(",")) break;
        lex_.Take();
      }
    }
    // HAVING parses with or without GROUP BY; the groupless form is a
    // semantic error (kTypeError) reported by Prepare, not a parse error.
    if (IsKeyword("HAVING")) {
      lex_.Take();
      CLEANM_ASSIGN_OR_RETURN(q.having, ParseExpr());
    }

    // Cleaning clauses, in any order, repeated.
    while (true) {
      if (IsKeyword("FD")) {
        lex_.Take();
        CLEANM_RETURN_NOT_OK(ParseFd(&q));
        continue;
      }
      if (IsKeyword("DEDUP")) {
        lex_.Take();
        CLEANM_RETURN_NOT_OK(ParseDedup(&q));
        continue;
      }
      if (IsKeyword("CLUSTER")) {
        lex_.Take();
        CLEANM_RETURN_NOT_OK(ExpectKeyword("BY"));
        CLEANM_RETURN_NOT_OK(ParseClusterBy(&q));
        continue;
      }
      break;
    }
    if (IsPunct(";")) lex_.Take();
    if (lex_.Peek().kind != TokKind::kEnd) {
      return lex_.Error("unexpected trailing input");
    }
    return q;
  }

  Result<ExprPtr> ParseStandaloneExpr() {
    CLEANM_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (lex_.Peek().kind != TokKind::kEnd) {
      return lex_.Error("unexpected trailing input after expression");
    }
    return e;
  }

 private:
  bool IsKeyword(const char* kw) const {
    return lex_.Peek().kind == TokKind::kIdent && lex_.Peek().upper == kw;
  }
  bool IsPunct(const char* p) const {
    return lex_.Peek().kind == TokKind::kPunct && lex_.Peek().text == p;
  }
  Status ExpectKeyword(const char* kw) {
    if (!IsKeyword(kw)) return lex_.Error(std::string("expected ") + kw);
    lex_.Take();
    return Status::OK();
  }
  Status ExpectPunct(const char* p) {
    if (!IsPunct(p)) return lex_.Error(std::string("expected '") + p + "'");
    lex_.Take();
    return Status::OK();
  }

  Status ParseSelectList(CleanMQuery* q) {
    while (true) {
      SelectItem item;
      if (IsPunct("*")) {
        lex_.Take();
        item.star = true;
      } else {
        CLEANM_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (IsKeyword("AS")) {
          lex_.Take();
          if (lex_.Peek().kind != TokKind::kIdent) return lex_.Error("expected alias");
          item.alias = lex_.Take().text;
        }
      }
      q->select_list.push_back(std::move(item));
      if (!IsPunct(",")) break;
      lex_.Take();
    }
    return Status::OK();
  }

  Status ParseFrom(CleanMQuery* q) {
    while (true) {
      if (lex_.Peek().kind != TokKind::kIdent) return lex_.Error("expected table name");
      TableRef ref;
      ref.table = lex_.Take().text;
      ref.alias = ref.table;
      // Optional alias: a bare identifier that is not a clause keyword.
      if (lex_.Peek().kind == TokKind::kIdent && !IsKeyword("WHERE") &&
          !IsKeyword("GROUP") && !IsKeyword("FD") && !IsKeyword("DEDUP") &&
          !IsKeyword("CLUSTER") && !IsKeyword("HAVING")) {
        ref.alias = lex_.Take().text;
      }
      q->from.push_back(std::move(ref));
      if (!IsPunct(",")) break;
      lex_.Take();
    }
    return Status::OK();
  }

  /// Parses an <op> name inside DEDUP/CLUSTER BY; accepts the two-word
  /// spelling "token filtering" used in the paper.
  Result<FilteringAlgo> ParseOpName() {
    if (lex_.Peek().kind != TokKind::kIdent) {
      return lex_.Error("expected filtering algorithm name");
    }
    std::string name = lex_.Take().text;
    if (lex_.Peek().kind == TokKind::kIdent && !IsPunct(",")) {
      // Two-word names: "token filtering".
      FilteringAlgo combined;
      if (ParseFilteringAlgo(name + " " + lex_.Peek().text, &combined)) {
        lex_.Take();
        return combined;
      }
    }
    FilteringAlgo algo;
    if (!ParseFilteringAlgo(name, &algo)) {
      return Status::ParseError("unknown filtering algorithm '" + name + "'");
    }
    return algo;
  }

  Result<SimilarityMetric> ParseMetricName() {
    if (lex_.Peek().kind != TokKind::kIdent) {
      return lex_.Error("expected similarity metric name");
    }
    const std::string name = lex_.Take().text;
    SimilarityMetric metric;
    if (!ParseSimilarityMetric(name, &metric)) {
      return Status::ParseError("unknown similarity metric '" + name + "'");
    }
    return metric;
  }

  Status ParseFd(CleanMQuery* q) {
    CLEANM_RETURN_NOT_OK(ExpectPunct("("));
    FdClause fd;
    // attributesLHS , attributesRHS. Each side is one expression; multiple
    // attributes per side arrive as nested parens: FD((a, b), c).
    CLEANM_RETURN_NOT_OK(ParseAttrGroup(&fd.lhs));
    CLEANM_RETURN_NOT_OK(ExpectPunct(","));
    CLEANM_RETURN_NOT_OK(ParseAttrGroup(&fd.rhs));
    CLEANM_RETURN_NOT_OK(ExpectPunct(")"));
    q->fds.push_back(std::move(fd));
    return Status::OK();
  }

  /// One attribute, or a parenthesized list of attributes.
  Status ParseAttrGroup(std::vector<ExprPtr>* out) {
    if (IsPunct("(")) {
      lex_.Take();
      while (true) {
        CLEANM_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        out->push_back(std::move(e));
        if (!IsPunct(",")) break;
        lex_.Take();
      }
      return ExpectPunct(")");
    }
    CLEANM_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    out->push_back(std::move(e));
    return Status::OK();
  }

  Status ParseDedup(CleanMQuery* q) {
    CLEANM_RETURN_NOT_OK(ExpectPunct("("));
    DedupClause dedup;
    CLEANM_ASSIGN_OR_RETURN(dedup.op, ParseOpName());
    // Optional metric + theta: a metric name followed by a number.
    if (IsPunct(",")) {
      lex_.Take();
      if (lex_.Peek().kind == TokKind::kIdent) {
        SimilarityMetric metric;
        if (ParseSimilarityMetric(lex_.Peek().text, &metric)) {
          lex_.Take();
          dedup.metric = metric;
          CLEANM_RETURN_NOT_OK(ExpectPunct(","));
          if (lex_.Peek().kind != TokKind::kNumber) {
            return lex_.Error("expected similarity threshold");
          }
          dedup.theta = lex_.Take().number;
          if (IsPunct(",")) {
            lex_.Take();
          } else {
            CLEANM_RETURN_NOT_OK(ExpectPunct(")"));
            q->dedups.push_back(std::move(dedup));
            return Status::OK();
          }
        }
      }
      // Attributes.
      while (true) {
        CLEANM_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        dedup.attributes.push_back(std::move(e));
        if (!IsPunct(",")) break;
        lex_.Take();
      }
    }
    CLEANM_RETURN_NOT_OK(ExpectPunct(")"));
    q->dedups.push_back(std::move(dedup));
    return Status::OK();
  }

  Status ParseClusterBy(CleanMQuery* q) {
    CLEANM_RETURN_NOT_OK(ExpectPunct("("));
    ClusterByClause cb;
    CLEANM_ASSIGN_OR_RETURN(cb.op, ParseOpName());
    CLEANM_RETURN_NOT_OK(ExpectPunct(","));
    // Optional metric + theta before the term.
    if (lex_.Peek().kind == TokKind::kIdent) {
      SimilarityMetric metric;
      if (ParseSimilarityMetric(lex_.Peek().text, &metric)) {
        lex_.Take();
        cb.metric = metric;
        CLEANM_RETURN_NOT_OK(ExpectPunct(","));
        if (lex_.Peek().kind != TokKind::kNumber) {
          return lex_.Error("expected similarity threshold");
        }
        cb.theta = lex_.Take().number;
        CLEANM_RETURN_NOT_OK(ExpectPunct(","));
      }
    }
    CLEANM_ASSIGN_OR_RETURN(cb.term, ParseExpr());
    CLEANM_RETURN_NOT_OK(ExpectPunct(")"));
    q->cluster_bys.push_back(std::move(cb));
    return Status::OK();
  }

  // ---- Expressions (precedence climbing) ----

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    CLEANM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (IsKeyword("OR")) {
      lex_.Take();
      CLEANM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Binary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    CLEANM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (IsKeyword("AND")) {
      lex_.Take();
      CLEANM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Binary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (IsKeyword("NOT")) {
      lex_.Take();
      CLEANM_ASSIGN_OR_RETURN(ExprPtr child, ParseNot());
      return Unary(UnaryOp::kNot, std::move(child));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    CLEANM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    struct CmpOp {
      const char* text;
      BinaryOp op;
    };
    static const CmpOp ops[] = {{"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe},
                                {"<>", BinaryOp::kNe}, {"!=", BinaryOp::kNe},
                                {"=", BinaryOp::kEq},  {"<", BinaryOp::kLt},
                                {">", BinaryOp::kGt}};
    for (const auto& candidate : ops) {
      if (IsPunct(candidate.text)) {
        lex_.Take();
        CLEANM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
        return Binary(candidate.op, std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    CLEANM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (IsPunct("+") || IsPunct("-")) {
      const BinaryOp op = lex_.Take().text == "+" ? BinaryOp::kAdd : BinaryOp::kSub;
      CLEANM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    CLEANM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (IsPunct("*") || IsPunct("/")) {
      const BinaryOp op = lex_.Take().text == "*" ? BinaryOp::kMul : BinaryOp::kDiv;
      CLEANM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (IsPunct("-")) {
      lex_.Take();
      CLEANM_ASSIGN_OR_RETURN(ExprPtr child, ParseUnary());
      return Unary(UnaryOp::kNeg, std::move(child));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = lex_.Peek();
    switch (t.kind) {
      case TokKind::kNumber: {
        Token num = lex_.Take();
        if (num.is_int) return ConstInt(static_cast<int64_t>(num.number));
        return ConstDouble(num.number);
      }
      case TokKind::kString:
        return ConstString(lex_.Take().text);
      case TokKind::kIdent: {
        if (t.upper == "TRUE") {
          lex_.Take();
          return ConstBool(true);
        }
        if (t.upper == "FALSE") {
          lex_.Take();
          return ConstBool(false);
        }
        if (t.upper == "NULL") {
          lex_.Take();
          return Const(Value::Null());
        }
        Token ident = lex_.Take();
        // Function call?
        if (IsPunct("(")) {
          lex_.Take();
          std::vector<ExprPtr> args;
          if (!IsPunct(")")) {
            while (true) {
              CLEANM_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
              args.push_back(std::move(arg));
              if (!IsPunct(",")) break;
              lex_.Take();
            }
          }
          CLEANM_RETURN_NOT_OK(ExpectPunct(")"));
          ExprPtr call = Call(ident.text, std::move(args));
          call->src_pos = ident.pos;
          return ParsePostfix(std::move(call));
        }
        return ParsePostfix(Var(ident.text));
      }
      case TokKind::kPunct:
        if (t.text == "(") {
          lex_.Take();
          CLEANM_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
          CLEANM_RETURN_NOT_OK(ExpectPunct(")"));
          return ParsePostfix(std::move(inner));
        }
        return lex_.Error("unexpected token in expression");
      case TokKind::kEnd:
        return lex_.Error("unexpected end of input in expression");
    }
    return lex_.Error("unexpected token");
  }

  Result<ExprPtr> ParsePostfix(ExprPtr base) {
    while (IsPunct(".")) {
      lex_.Take();
      if (lex_.Peek().kind != TokKind::kIdent) return lex_.Error("expected field name");
      base = FieldAccess(std::move(base), lex_.Take().text);
    }
    return base;
  }

  Lexer lex_;
};

}  // namespace

Result<CleanMQuery> ParseCleanM(const std::string& query) {
  Parser parser(query);
  return parser.ParseQuery();
}

Result<ExprPtr> ParseCleanMExpr(const std::string& text) {
  Parser parser(text);
  return parser.ParseStandaloneExpr();
}

void LineColumnAt(const std::string& text, size_t offset, size_t* line,
                  size_t* column) {
  *line = 1;
  *column = 1;
  for (size_t i = 0; i < offset && i < text.size(); i++) {
    if (text[i] == '\n') {
      (*line)++;
      *column = 1;
    } else {
      (*column)++;
    }
  }
}

}  // namespace cleanm
