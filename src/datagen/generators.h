// Synthetic workload generators mirroring the paper's Section 8 setup,
// scaled to laptop sizes (row counts ~1/1000 of the paper's; scale-factor
// *ratios*, noise percentages, and skew distributions preserved — see
// DESIGN.md, Substitutions).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "storage/dataset.h"

namespace cleanm::datagen {

/// \brief TPC-H-like lineitem: orderkey, linenumber, suppkey, price,
/// discount, quantity, receiptdate.
///
/// `noise_fraction` of the rows get their `noise_column` value replaced by
/// a value drawn from the SF15-equivalent domain, so skew grows with the
/// scale factor exactly as in the paper's setup. `missing_fraction` nulls
/// out quantity values (for the fill-missing transformation).
struct LineitemOptions {
  size_t rows = 90000;        ///< paper SF15 = 90M rows; default 1/1000
  double noise_fraction = 0.10;
  std::string noise_column = "orderkey";
  size_t noise_domain = 22500;  ///< SF15-equivalent orderkey domain
  double missing_fraction = 0.0;
  uint64_t seed = 42;
};
Dataset MakeLineitem(const LineitemOptions& options);

/// \brief TPC-H-like customer: custkey, name, address, phone, nationkey.
///
/// `duplicate_fraction` of the customers receive duplicate records; the
/// per-customer duplicate count is Zipf-distributed over
/// [1, max_duplicates] (Figure 8a uses 50 and 100). Duplicates randomly
/// edit the name and phone values, keeping the address intact.
struct CustomerOptions {
  size_t base_rows = 15000;
  double duplicate_fraction = 0.10;
  size_t max_duplicates = 50;
  /// Fraction of customers whose phone prefix disagrees with their address
  /// group (FD1 violations) / whose nationkey disagrees (FD2 violations).
  double fd_violation_fraction = 0.05;
  uint64_t seed = 42;
};
Dataset MakeCustomer(const CustomerOptions& options);

/// \brief DBLP-like bibliography with nested authors.
///
/// Titles are word permutations over a vocabulary (the paper scales DBLP up
/// "by permuting the words of existing titles"); each record has a journal,
/// a year, and 1–4 authors from a name pool. `noise_fraction` of the author
/// occurrences get `noise_factor` of their characters edited.
/// `duplicate_fraction` of publications appear twice with a slightly edited
/// title (same journal), for the deduplication experiments.
/// `skew` > 0 makes a few titles extremely frequent (the skew that breaks
/// Spark SQL in Figure 7's setup).
struct DblpOptions {
  size_t rows = 6400;
  size_t author_pool = 2000;
  double noise_fraction = 0.10;
  double noise_factor = 0.20;
  double duplicate_fraction = 0.10;
  double skew = 0.0;  ///< 0 = uniform titles; >0 = Zipf exponent
  uint64_t seed = 42;
};
/// Returns the nested dataset (authors as a list column) plus, via
/// `clean_authors`, the ground-truth clean author name per noisy
/// occurrence (index-aligned with the flattened author occurrences) for
/// accuracy measurement.
Dataset MakeDblp(const DblpOptions& options,
                 std::vector<std::pair<std::string, std::string>>* noisy_to_clean = nullptr);

/// The author-name dictionary used for term validation: the clean name
/// pool (paper: 200K names; scaled by the same factor as the data).
Dataset MakeAuthorDictionary(size_t names, uint64_t seed = 42);

/// \brief MAG-like publication records: id, title, doi, year, author_id,
/// affiliation. Highly skewed (Zipf years/venues); `duplicate_fraction`
/// of the papers repeat with title/DOI variations or missing DOI — the
/// paper's main MAG quality issue.
struct MagOptions {
  size_t rows = 33000;
  double duplicate_fraction = 0.10;
  uint64_t seed = 42;
};
Dataset MakeMag(const MagOptions& options);

/// Applies `factor` random character edits (substitutions) to roughly
/// factor*|s| positions of `s`.
std::string AddNoise(const std::string& s, double factor, Rng* rng);

}  // namespace cleanm::datagen
