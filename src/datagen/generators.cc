#include "datagen/generators.h"

#include <algorithm>

namespace cleanm::datagen {

namespace {

const char* kFirstNames[] = {
    "james", "mary", "john", "patricia", "robert", "jennifer", "michael",
    "linda", "william", "elizabeth", "david", "barbara", "richard", "susan",
    "joseph", "jessica", "thomas", "sarah", "charles", "karen", "stella",
    "manos", "anastasia", "benjamin", "yannis", "ioanna", "nikos", "maria"};
const char* kLastNames[] = {
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
    "wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
    "karpathiotakis", "ailamaki", "giannakopoulou", "gaidioz", "fegaras"};
const char* kStreets[] = {"rue de lausanne", "bahnhofstrasse", "main street",
                          "avenue de la gare", "chemin des fleurs", "route cantonale",
                          "via roma", "hauptstrasse", "king street", "station road"};
const char* kTitleWords[] = {
    "scalable", "distributed", "query", "processing", "data", "cleaning",
    "adaptive", "optimization", "monoid", "calculus", "engine", "systems",
    "transactional", "analytical", "storage", "indexing", "streams", "learning",
    "declarative", "language", "heterogeneous", "raw", "files", "parallel"};
const char* kJournals[] = {"PVLDB", "SIGMOD Record", "TODS", "VLDBJ", "TKDE",
                           "CACM", "ICDE Proc", "EDBT Proc"};
const char* kAffiliations[] = {"EPFL", "ETHZ", "MIT", "CMU", "Stanford",
                               "TUM", "NUS", "Oxford"};

std::string MakeName(Rng* rng) {
  return std::string(rng->Pick(std::vector<std::string>(
             std::begin(kFirstNames), std::end(kFirstNames)))) +
         " " +
         rng->Pick(std::vector<std::string>(std::begin(kLastNames),
                                            std::end(kLastNames)));
}

std::string MakePhone(size_t prefix_group, Rng* rng) {
  // Prefix encodes the region; the FD address → prefix(phone) holds when
  // customers at one address share the prefix.
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%03zu-555-%04llu", prefix_group % 1000,
                static_cast<unsigned long long>(rng->Uniform(10000)));
  return buf;
}

std::string MakeDate(Rng* rng) {
  char buf[12];
  std::snprintf(buf, sizeof(buf), "%04llu-%02llu-%02llu",
                static_cast<unsigned long long>(1992 + rng->Uniform(7)),
                static_cast<unsigned long long>(1 + rng->Uniform(12)),
                static_cast<unsigned long long>(1 + rng->Uniform(28)));
  return buf;
}

}  // namespace

std::string AddNoise(const std::string& s, double factor, Rng* rng) {
  if (s.empty()) return s;
  std::string out = s;
  const auto edits = std::max<size_t>(
      1, static_cast<size_t>(factor * static_cast<double>(s.size())));
  for (size_t i = 0; i < edits; i++) {
    const size_t pos = rng->Uniform(out.size());
    out[pos] = static_cast<char>('a' + rng->Uniform(26));
  }
  return out;
}

Dataset MakeLineitem(const LineitemOptions& options) {
  Rng rng(options.seed);
  Dataset d(Schema{{"orderkey", ValueType::kInt},
                   {"linenumber", ValueType::kInt},
                   {"suppkey", ValueType::kInt},
                   {"price", ValueType::kDouble},
                   {"discount", ValueType::kDouble},
                   {"quantity", ValueType::kDouble},
                   {"receiptdate", ValueType::kString}});
  const size_t orders = std::max<size_t>(1, options.rows / 4);
  for (size_t i = 0; i < options.rows; i++) {
    const int64_t orderkey = static_cast<int64_t>(i / 4);
    const int64_t linenumber = static_cast<int64_t>(i % 4);
    // The clean FD: (orderkey, linenumber) → suppkey.
    const int64_t suppkey = static_cast<int64_t>((orderkey * 7 + linenumber) % 1000);
    Row row{Value(orderkey),
            Value(linenumber),
            Value(suppkey),
            Value(900.0 + static_cast<double>(rng.Uniform(100000)) / 100.0),
            Value(static_cast<double>(rng.Uniform(11)) / 100.0),
            options.missing_fraction > 0 && rng.Chance(options.missing_fraction)
                ? Value::Null()
                : Value(1.0 + static_cast<double>(rng.Uniform(50))),
            Value(MakeDate(&rng))};
    d.Append(std::move(row));
  }
  // Noise injection: replace noise_column values with Zipf-skewed draws
  // from the SF15-equivalent domain. The domain stays fixed while the
  // dataset grows, and popular values repeat Zipf-style, so key skew
  // increases with the scale factor — the paper's construction.
  const size_t col = d.schema().IndexOf(options.noise_column).ValueOrDie();
  const size_t noisy = static_cast<size_t>(options.noise_fraction *
                                           static_cast<double>(options.rows));
  ZipfGenerator noise_zipf(options.noise_domain, 1.2, options.seed + 9);
  for (size_t i = 0; i < noisy; i++) {
    const size_t row = rng.Uniform(options.rows);
    const auto drawn = static_cast<int64_t>(noise_zipf.Next() - 1);
    if (d.schema().field(col).type == ValueType::kDouble) {
      d.mutable_rows()[row][col] = Value(static_cast<double>(drawn) / 100.0);
    } else {
      d.mutable_rows()[row][col] = Value(drawn);
    }
  }
  (void)orders;
  return d;
}

Dataset MakeCustomer(const CustomerOptions& options) {
  Rng rng(options.seed);
  Dataset d(Schema{{"custkey", ValueType::kInt},
                   {"name", ValueType::kString},
                   {"address", ValueType::kString},
                   {"phone", ValueType::kString},
                   {"nationkey", ValueType::kInt}});
  // Base customers: address groups share phone prefix and nationkey, so
  // the FDs hold except for injected violations.
  const size_t address_groups = std::max<size_t>(1, options.base_rows / 5);
  std::vector<Row> base;
  base.reserve(options.base_rows);
  for (size_t i = 0; i < options.base_rows; i++) {
    const size_t group = rng.Uniform(address_groups);
    std::string address = std::string(kStreets[group % 10]) + " " +
                          std::to_string(group / 10 + 1);
    const bool violate = rng.Chance(options.fd_violation_fraction);
    const size_t prefix_group = violate ? group + 1 : group;
    const int64_t nationkey = static_cast<int64_t>(
        violate ? (group + 1) % 25 : group % 25);
    base.push_back(Row{Value(static_cast<int64_t>(i)), Value(MakeName(&rng)),
                       Value(std::move(address)), Value(MakePhone(prefix_group, &rng)),
                       Value(nationkey)});
  }
  // Duplicates: Zipf-distributed counts, name/phone edited, address kept.
  ZipfGenerator zipf(options.max_duplicates, 1.0, options.seed + 1);
  int64_t next_key = static_cast<int64_t>(options.base_rows);
  std::vector<Row> all = base;
  for (const auto& row : base) {
    if (!rng.Chance(options.duplicate_fraction)) continue;
    const uint64_t copies = zipf.Next();
    for (uint64_t c = 0; c < copies; c++) {
      Row dup = row;
      dup[0] = Value(next_key++);
      dup[1] = Value(AddNoise(dup[1].AsString(), 0.1, &rng));
      dup[3] = Value(AddNoise(dup[3].AsString(), 0.1, &rng));
      all.push_back(std::move(dup));
    }
  }
  // Shuffle row order (the paper shuffles tuple order).
  for (size_t i = all.size(); i > 1; i--) {
    std::swap(all[i - 1], all[rng.Uniform(i)]);
  }
  for (auto& row : all) d.Append(std::move(row));
  return d;
}

Dataset MakeDblp(const DblpOptions& options,
                 std::vector<std::pair<std::string, std::string>>* noisy_to_clean) {
  Rng rng(options.seed);
  // Author pool (the clean terminology).
  std::vector<std::string> authors;
  authors.reserve(options.author_pool);
  for (size_t i = 0; i < options.author_pool; i++) {
    authors.push_back(MakeName(&rng) + " " + std::to_string(i % 97));
  }

  Dataset d(Schema{{"title", ValueType::kString},
                   {"journal", ValueType::kString},
                   {"year", ValueType::kInt},
                   {"author", ValueType::kList}});
  ZipfGenerator title_zipf(std::max<size_t>(options.rows / 4, 1),
                           options.skew > 0 ? options.skew : 1.0, options.seed + 2);
  auto make_title = [&] {
    if (options.skew > 0) {
      // Skewed: a few hot titles repeat very often.
      return "on the " + std::string(kTitleWords[title_zipf.Next() % 24]) + " " +
             kTitleWords[title_zipf.Next() % 24];
    }
    std::string t;
    const size_t words = 4 + rng.Uniform(4);
    for (size_t w = 0; w < words; w++) {
      if (w) t += ' ';
      t += kTitleWords[rng.Uniform(24)];
    }
    return t;
  };

  std::vector<Row> rows;
  for (size_t i = 0; i < options.rows; i++) {
    ValueList author_list;
    const size_t n_authors = 1 + rng.Uniform(4);
    for (size_t a = 0; a < n_authors; a++) {
      std::string name = rng.Pick(authors);
      if (rng.Chance(options.noise_fraction)) {
        std::string noisy = AddNoise(name, options.noise_factor, &rng);
        if (noisy_to_clean && noisy != name) {
          noisy_to_clean->emplace_back(noisy, name);
        }
        name = std::move(noisy);
      }
      author_list.push_back(Value(std::move(name)));
    }
    Row row{Value(make_title()), Value(std::string(kJournals[rng.Uniform(8)])),
            Value(static_cast<int64_t>(1990 + rng.Uniform(30))),
            Value(std::move(author_list))};
    rows.push_back(row);
    if (rng.Chance(options.duplicate_fraction)) {
      Row dup = row;
      // Duplicate publication: same journal + title (the blocking keys),
      // lightly perturbed authors.
      if (!dup[3].AsList().empty()) {
        ValueList perturbed = dup[3].AsList();
        perturbed[0] = Value(AddNoise(perturbed[0].AsString(), 0.1, &rng));
        dup[3] = Value(std::move(perturbed));
      }
      rows.push_back(std::move(dup));
    }
  }
  for (auto& row : rows) d.Append(std::move(row));
  return d;
}

Dataset MakeAuthorDictionary(size_t names, uint64_t seed) {
  Rng rng(seed);
  Dataset d(Schema{{"name", ValueType::kString}});
  for (size_t i = 0; i < names; i++) {
    d.Append({Value(MakeName(&rng) + " " + std::to_string(i % 97))});
  }
  return d;
}

Dataset MakeMag(const MagOptions& options) {
  Rng rng(options.seed);
  Dataset d(Schema{{"id", ValueType::kInt},
                   {"title", ValueType::kString},
                   {"doi", ValueType::kString},
                   {"year", ValueType::kInt},
                   {"author_id", ValueType::kInt},
                   {"affiliation", ValueType::kString}});
  // Real-world skew: years and authors follow Zipf.
  ZipfGenerator year_zipf(25, 1.3, options.seed + 3);
  // Author productivity is skewed but bounded: exponent 0.9 over a pool of
  // rows/5 keeps the hottest (year, author) blocks in the hundreds of rows,
  // as in the real MAG, instead of one degenerate mega-block.
  ZipfGenerator author_zipf(std::max<size_t>(options.rows / 5, 1), 0.9,
                            options.seed + 4);
  int64_t next_id = 0;
  std::vector<Row> rows;
  for (size_t i = 0; i < options.rows; i++) {
    std::string title;
    const size_t words = 5 + rng.Uniform(5);
    for (size_t w = 0; w < words; w++) {
      if (w) title += ' ';
      title += kTitleWords[rng.Uniform(24)];
    }
    char doi[32];
    std::snprintf(doi, sizeof(doi), "10.1145/%07llu",
                  static_cast<unsigned long long>(rng.Uniform(10000000)));
    Row row{Value(next_id++),
            Value(title),
            Value(std::string(doi)),
            Value(static_cast<int64_t>(2015 - static_cast<int64_t>(year_zipf.Next()))),
            Value(static_cast<int64_t>(author_zipf.Next())),
            Value(std::string(kAffiliations[rng.Uniform(8)]))};
    rows.push_back(row);
    if (rng.Chance(options.duplicate_fraction)) {
      Row dup = row;
      dup[0] = Value(next_id++);
      // Variation in title or DOI, or missing DOI (the paper's MAG issues).
      const uint64_t kind = rng.Uniform(3);
      if (kind == 0) {
        dup[1] = Value(AddNoise(dup[1].AsString(), 0.05, &rng));
      } else if (kind == 1) {
        dup[2] = Value(AddNoise(dup[2].AsString(), 0.1, &rng));
      } else {
        dup[2] = Value::Null();
      }
      rows.push_back(std::move(dup));
    }
  }
  for (auto& row : rows) d.Append(std::move(row));
  return d;
}

}  // namespace cleanm::datagen
