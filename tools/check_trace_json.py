#!/usr/bin/env python3
"""Validates a Chrome trace_event JSON file (QueryProfile::WriteChromeTrace).

Stdlib-only. Checks:
  * the file is a JSON array of event objects,
  * every "X" (complete) event carries ph/ts/dur/pid/tid/name with numeric
    non-negative ts/dur,
  * within each (pid, tid) track, spans nest properly: two spans either
    don't overlap or one contains the other (the RAII discipline of
    TraceScope guarantees this per recording thread; a violation means the
    exporter or the recorder is broken).

Timestamps are microseconds with fractional (nanosecond) precision; the
nesting check tolerates EPS for the decimal->double round-trip.

Usage: check_trace_json.py TRACE.json
Exit 0 when valid; 1 with a diagnostic otherwise.
"""

import json
import sys

EPS = 0.002  # µs; ~2 ns of float tolerance

REQUIRED_X_KEYS = ("ph", "ts", "dur", "pid", "tid", "name")


def fail(msg):
    print(f"check_trace_json: FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} TRACE.json")
    path = sys.argv[1]
    try:
        with open(path, "rb") as f:
            events = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    if not isinstance(events, list):
        fail(f"{path}: top-level value must be a JSON array of events")
    if not events:
        fail(f"{path}: trace is empty")

    tracks = {}
    n_complete = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event #{i} is not an object")
        ph = ev.get("ph")
        if ph is None:
            fail(f"event #{i} has no 'ph' key")
        if ph != "X":
            continue  # metadata ("M") and other phases: no further checks
        for key in REQUIRED_X_KEYS:
            if key not in ev:
                fail(f"event #{i} ({ev.get('name', '?')}): missing '{key}'")
        ts, dur = ev["ts"], ev["dur"]
        if not isinstance(ts, (int, float)) or not isinstance(dur, (int, float)):
            fail(f"event #{i} ({ev['name']}): ts/dur must be numbers")
        if ts < 0 or dur < 0:
            fail(f"event #{i} ({ev['name']}): negative ts/dur")
        if not isinstance(ev["name"], str) or not ev["name"]:
            fail(f"event #{i}: 'name' must be a non-empty string")
        n_complete += 1
        tracks.setdefault((ev["pid"], ev["tid"]), []).append(ev)

    if n_complete == 0:
        fail(f"{path}: no complete ('X') events")

    # Per-track nesting: sweep spans by (start, -dur); maintain the stack of
    # open spans. Each span must close before (or exactly when, for
    # zero-duration spans) every span still on the stack does.
    for (pid, tid), spans in tracks.items():
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []  # (ts, end, name)
        for ev in spans:
            start, end = ev["ts"], ev["ts"] + ev["dur"]
            while stack and start >= stack[-1][1] - EPS:
                stack.pop()
            if stack and end > stack[-1][1] + EPS:
                fail(
                    f"track pid={pid} tid={tid}: span '{ev['name']}' "
                    f"[{start}, {end}] crosses enclosing "
                    f"'{stack[-1][2]}' [{stack[-1][0]}, {stack[-1][1]}]"
                )
            stack.append((start, end, ev["name"]))

    print(
        f"check_trace_json: OK: {n_complete} spans on {len(tracks)} "
        f"track(s) in {path}"
    )


if __name__ == "__main__":
    main()
