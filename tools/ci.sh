#!/usr/bin/env bash
# CI driver: configure → build → test for the release and asan presets.
# Any configure, build, or test failure fails the script.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

for preset in release asan; do
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$JOBS"
  echo "=== [$preset] ctest ==="
  ctest --preset "$preset" -j "$JOBS"
done

# Perf regression gate: the worker-pool dispatch path must stay clearly
# faster than spawn-per-call (--check exits non-zero past a generous
# threshold), so the pool can't silently regress back to thread-per-operator.
echo "=== [release] cluster-primitives dispatch gate ==="
./build-release/bench_cluster_primitives --smoke --check \
  --out build-release/BENCH_cluster.json

# Prepared-query regression gate: re-executing a PreparedQuery on a warm
# session must stay ≥2× faster than a cold one-shot Execute on the 8-FD
# unified plan (pure compute), with zero re-partitioning — this is the
# plan/partition-cache reuse the Prepare/Execute split exists for. The
# measured numbers land in BENCH_cluster.json next to the dispatch gate's.
echo "=== [release] prepared-query re-execution gate ==="
./build-release/bench_unified_cleaning --smoke --nonet --check \
  --out build-release/BENCH_cluster.json

echo "CI OK: release + asan presets built and tested clean; dispatch and prepared-reexec gates passed."
