#!/usr/bin/env bash
# CI driver: configure → build → test for the release and asan presets.
# Any configure, build, or test failure fails the script.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

for preset in release asan; do
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$JOBS"
  echo "=== [$preset] ctest ==="
  ctest --preset "$preset" -j "$JOBS"
done

# Perf regression gate: the worker-pool dispatch path must stay clearly
# faster than spawn-per-call (--check exits non-zero past a generous
# threshold), so the pool can't silently regress back to thread-per-operator.
echo "=== [release] cluster-primitives dispatch gate ==="
./build-release/bench_cluster_primitives --smoke --check \
  --out build-release/BENCH_cluster.json

echo "CI OK: release + asan presets built and tested clean; dispatch gate passed."
