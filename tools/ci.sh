#!/usr/bin/env bash
# CI driver: configure → build → test for the release and asan presets.
# Any configure, build, or test failure fails the script.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

for preset in release asan; do
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$JOBS"
  echo "=== [$preset] ctest ==="
  ctest --preset "$preset" -j "$JOBS"
done

echo "CI OK: release + asan presets built and tested clean."
