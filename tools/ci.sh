#!/usr/bin/env bash
# CI driver: configure → build → test for the release, asan, ubsan, and
# tsan presets, then the perf/memory regression gates.
#
# Env knobs:
#   JOBS=<n>              parallelism (default: nproc)
#   CI_SKIP_CONFIGURE=1   skip `cmake --preset` for build dirs that are
#                         already configured — local iteration stays
#                         incremental instead of reconfiguring from scratch
#                         every run. Fresh/unconfigured dirs still configure.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
CI_SKIP_CONFIGURE="${CI_SKIP_CONFIGURE:-0}"

configure() {
  local preset="$1"
  if [[ "$CI_SKIP_CONFIGURE" == "1" && -f "build-$preset/CMakeCache.txt" ]]; then
    echo "=== [$preset] configure skipped (CI_SKIP_CONFIGURE=1, cache present) ==="
    return
  fi
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
}

for preset in release asan ubsan tsan; do
  configure "$preset"
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$JOBS"
  echo "=== [$preset] ctest ==="
  # The ubsan and tsan test presets exclude LABELS slow cases (bench/example
  # smokes) via CMakePresets.json — UB coverage comes from the unit/e2e
  # suites, the tsan leg exists for the concurrency suites (worker pool,
  # morsel pump, partition cache, session stress), and the slow cases
  # already run under release and asan.
  ctest --preset "$preset" -j "$JOBS"
done

# Gate commands run under `set -x` so a CI failure log shows the exact
# invocation to reproduce locally.
set -x

# Perf regression gate: the worker-pool dispatch path must stay clearly
# faster than spawn-per-call (--check exits non-zero past a generous
# threshold), so the pool can't silently regress back to thread-per-operator.
# Full (non-smoke) scale: the checked-in BENCH_cluster.json baseline is
# measured at full scale, so the regression diff below compares like with
# like.
./build-release/bench_cluster_primitives --check \
  --out build-release/BENCH_cluster.json

# Prepared-query + UDF + pipeline + fault-tolerance gates on the 8-FD
# unified plan (pure compute): re-executing a PreparedQuery on a warm
# session must stay ≥2× over a cold one-shot Execute with zero
# re-partitioning; a registered (monoid-annotated) UDF aggregate must stay
# within 1.3× of the built-in; the registered repair loop must match the
# hand-rolled cell set; the morsel-driven pipeline must hold peak transient
# memory ≥4× below the materialize-first path with bit-identical violation
# sets; under a buffer pool budgeted at 1/8 of the dataset footprint the
# plan must spill, keep pool residency within the budget, stay within 2× of
# the in-memory wall-clock, and produce bit-identical violations; with 5%
# injected task failures the plan must retry its way to bit-identical
# violations at ≤1.5× clean wall-clock; and a deadline at 10% of the clean
# wall-clock must return kDeadlineExceeded promptly. The observability gate
# rides the same binary: zero spans recorded with profiling off, the
# profile's per-operator counters summing exactly to the flat metrics, ≥6
# operator spans on the 8-FD plan, and a Chrome trace written for the
# validator below. The delta-incremental gate rides it too: after a 1%
# mutation, incremental re-validation must beat full re-execution ≥10x in
# wall-clock and in the deterministic delta-scaling row ratio, with zero
# re-partitions and the merged (violations − retractions + new) set
# canonically identical to a cold post-delta run. Measured numbers merge
# into BENCH_cluster.json next to the dispatch gate's.
./build-release/bench_unified_cleaning --nonet --check \
  --out build-release/BENCH_cluster.json \
  --trace-out build-release/trace_unified.json

# The exported Chrome trace must be a structurally valid trace_event file:
# a JSON array of events, every "X" event carrying ph/ts/dur/pid/tid/name,
# and spans nesting properly within each (pid, tid) track — a crossing
# means the recorder or the exporter is broken.
python3 tools/check_trace_json.py build-release/trace_unified.json

# Fault-injection seed sweep under ThreadSanitizer: three deterministic
# failure schedules through the session-concurrency stress suite. Each seed
# replays a different set of injected task failures while concurrent
# drivers, the churn thread, and the repair loop race — tsan verifies the
# retry/abort/join protocol leaves no lockstep assumptions behind, and the
# tests themselves verify the results stay bit-identical to the fault-free
# baseline.
for seed in 7 21 1337; do
  CLEANM_FAULT_SEED="$seed" ctest --preset tsan -R concurrency_stress_test \
    --output-on-failure
done

# Schema + regression check of the freshly measured BENCH_cluster.json
# against the checked-in baseline: a deterministic (byte-count /
# bit-identical) gate metric >20% worse fails; wall-clock-derived ratios
# only *warn* past their band — shared runners are too noisy for a hard
# wall-clock gate, and the benches' own --check flags already enforce the
# machine-local thresholds at measure time.
python3 tools/check_bench_json.py build-release/BENCH_cluster.json \
  --baseline BENCH_cluster.json

set +x
echo "CI OK: release + asan + ubsan + tsan presets built and tested clean; dispatch, prepared-reexec, UDF-aggregate, pipeline, fault-tolerance, and observability gates passed; fault seed sweep clean under tsan; bench JSON and Chrome trace validated."
