#!/usr/bin/env bash
# CI driver: configure → build → test for the release and asan presets.
# Any configure, build, or test failure fails the script.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

for preset in release asan; do
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$JOBS"
  echo "=== [$preset] ctest ==="
  ctest --preset "$preset" -j "$JOBS"
done

# Perf regression gate: the worker-pool dispatch path must stay clearly
# faster than spawn-per-call (--check exits non-zero past a generous
# threshold), so the pool can't silently regress back to thread-per-operator.
echo "=== [release] cluster-primitives dispatch gate ==="
./build-release/bench_cluster_primitives --smoke --check \
  --out build-release/BENCH_cluster.json

# Prepared-query + UDF regression gates: re-executing a PreparedQuery on a
# warm session must stay ≥2× faster than a cold one-shot Execute on the
# 8-FD unified plan (pure compute), with zero re-partitioning, AND a
# registered (monoid-annotated) UDF aggregate must stay within 1.3× of the
# equivalent built-in on a GROUP BY, with the registered repair loop
# computing the same cell set as a hand-rolled traversal. The measured
# numbers land in BENCH_cluster.json next to the dispatch gate's.
echo "=== [release] prepared-query re-execution + UDF aggregate gates ==="
./build-release/bench_unified_cleaning --smoke --nonet --check \
  --out build-release/BENCH_cluster.json

echo "CI OK: release + asan presets built and tested clean; dispatch, prepared-reexec, and UDF-aggregate gates passed."
