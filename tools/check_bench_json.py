#!/usr/bin/env python3
"""Validate BENCH_cluster.json: schema + regression vs the checked-in file.

Stdlib-only. Two jobs:

1. Schema (fatal, exit 1): every gate section the benches merge into the
   file must be present with the expected numeric fields, so a bench that
   silently stops writing its section can't pass CI on a stale file.
2. Regression: each gate metric is compared against the checked-in baseline
   (the repo's BENCH_cluster.json). Deterministic metrics (byte/row counts
   and bit-identical flags — e.g. pipeline.reduction) are a *hard* gate:
   moving more than --tolerance (default 20%) in the bad direction fails
   with exit 1. Wall-clock-derived ratios (dispatch.speedup,
   prepared_reexec.speedup, udf_vs_builtin_ratio, concurrency.speedup) are
   *advisory*: a move past --timing-tolerance (default 50%) prints a
   WARNING naming each offending metric but never fails the run, because
   the baseline is measured on a developer machine and CI runs on noisy
   shared runners — a hard wall-clock band flakes there, while the benches'
   own --check flags still enforce the machine-local thresholds at measure
   time. Improvements print a note so the baseline can be refreshed.

Usage:
    check_bench_json.py <measured.json> [--baseline BENCH_cluster.json]
                        [--tolerance 0.20] [--timing-tolerance 0.50]
"""

import argparse
import json
import sys

# section -> field -> None (informational) or (direction, kind):
# direction "higher"/"lower" = which way is better; kind "timing" metrics
# derive from wall-clock ratios (loose tolerance), "exact" metrics from
# deterministic byte/row counts (strict tolerance).
SCHEMA = {
    "dispatch": {
        "spawn_per_call_ns": None,  # informational, no direction gated
        "worker_pool_ns": None,
        "speedup": ("higher", "timing"),
    },
    "prepared_reexec": {
        "cold_execute_s": None,
        "prepared_reexec_s": None,
        "speedup": ("higher", "timing"),
        "reexec_repartitions": None,
    },
    "udf_repair": {
        "builtin_agg_s": None,
        "udf_agg_s": None,
        "udf_vs_builtin_ratio": ("lower", "timing"),
        "repairs_applied": None,
    },
    "pipeline": {
        "peak_materialized_bytes": None,
        "peak_pipelined_bytes": None,
        "reduction": ("higher", "exact"),
        "morsels": None,
        "violations_identical": None,
    },
    "out_of_core": {
        "footprint_bytes": None,
        "budget_bytes": None,
        "bytes_spilled": None,  # >0 enforced by the bench's own --check
        "pages_evicted": None,
        "pool_peak_resident_bytes": None,
        "within_budget": ("higher", "exact"),
        "in_memory_s": None,
        "out_of_core_s": None,
        "slowdown": ("lower", "timing"),
        "violations_identical": ("higher", "exact"),
    },
    "concurrency": {
        "sessions": None,
        "serial_s": None,
        "concurrent_s": None,
        "speedup": ("higher", "timing"),
        "violations_identical": ("higher", "exact"),
    },
    "fault_tolerance": {
        "clean_s": None,
        "faulted_s": None,
        "overhead": ("lower", "timing"),
        "tasks_failed": None,
        "tasks_retried": None,
        "violations_identical": ("higher", "exact"),
        "deadline_clean_s": None,
        "deadline_run_s": None,
        "deadline_exceeded": ("higher", "exact"),
    },
    "delta_incremental": {
        "base_rows": None,
        "delta_rows": None,
        "full_reexec_s": None,
        "incremental_s": None,
        "speedup": ("higher", "timing"),
        "full_rows_scanned": None,
        # Deterministic delta-scaling ratio (rows a full round scans / rows
        # an incremental round processes) — the machine-independent form of
        # the ≥10x claim, so it hard-gates while the wall-clock speedup
        # above only warns.
        "row_ratio": ("higher", "exact"),
        "delta_rows_processed": None,
        "groups_remerged": None,
        "incremental_repartitions": None,  # ==0 enforced by bench --check
        "violations_identical": ("higher", "exact"),
    },
    "observability": {
        "off_s": None,
        "profile_s": None,
        "off_overhead": ("lower", "timing"),
        "profile_overhead": ("lower", "timing"),
        "spans_recorded_off": None,  # ==0 enforced by the bench's own --check
        "operator_spans": ("higher", "exact"),
        "spans_total": None,
        "rows_reconciled": ("higher", "exact"),
    },
}


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except FileNotFoundError:
        sys.exit(f"check_bench_json: {path}: file not found")
    except json.JSONDecodeError as e:
        sys.exit(f"check_bench_json: {path}: invalid JSON: {e}")


def check_schema(doc, path):
    if not isinstance(doc, dict):
        sys.exit(f"check_bench_json: {path}: top level is not a JSON object "
                 f"(got {type(doc).__name__})")
    errors = []
    for section, fields in SCHEMA.items():
        if section not in doc:
            errors.append(f"missing section {section!r}")
            continue
        if not isinstance(doc[section], dict):
            errors.append(f"section {section!r} is not an object")
            continue
        for field in fields:
            value = doc[section].get(field)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors.append(f"{section}.{field} missing or non-numeric: {value!r}")
    if errors:
        for e in errors:
            print(f"check_bench_json: {path}: {e}", file=sys.stderr)
        sys.exit(1)


def check_regressions(measured, baseline, tolerance, timing_tolerance):
    """Hard-fails deterministic metrics >tolerance worse than the baseline;
    wall-clock ("timing") metrics only warn, naming each offender."""
    failures = []
    warnings = []
    if not isinstance(baseline, dict):
        # A renamed/corrupted baseline must fail by name, not by traceback.
        sys.exit("check_bench_json: FAILED: baseline top level is not a JSON "
                 f"object (got {type(baseline).__name__})")
    for section, fields in SCHEMA.items():
        measured_section = measured.get(section)
        if not isinstance(measured_section, dict):
            # check_schema normally catches this; a renamed section reaching
            # here (e.g. schema and bench disagree) still fails by name.
            failures.append(f"{section}: section missing from measured file")
            continue
        base_section = baseline.get(section)
        if not isinstance(base_section, dict):
            # Baseline predates this section (first run after a new gate
            # lands): nothing to regress against yet.
            print(f"check_bench_json: note: baseline has no {section!r} section; "
                  "regression check skipped for it")
            continue
        for field, gate in fields.items():
            if gate is None:
                continue
            direction, kind = gate
            field_tolerance = timing_tolerance if kind == "timing" else tolerance
            new = measured_section.get(field)
            if not isinstance(new, (int, float)) or isinstance(new, bool):
                failures.append(f"{section}.{field}: gated metric missing "
                                f"from measured file: {new!r}")
                continue
            old = base_section.get(field)
            if not isinstance(old, (int, float)) or isinstance(old, bool) or old <= 0:
                continue
            ratio = new / old
            sink = warnings if kind == "timing" else failures
            if direction == "higher" and ratio < 1.0 - field_tolerance:
                sink.append(
                    f"{section}.{field} regressed: {new:.4g} vs baseline "
                    f"{old:.4g} ({(1.0 - ratio) * 100:.1f}% worse, "
                    f"tolerance {field_tolerance * 100:.0f}%)")
            elif direction == "lower" and ratio > 1.0 + field_tolerance:
                sink.append(
                    f"{section}.{field} regressed: {new:.4g} vs baseline "
                    f"{old:.4g} ({(ratio - 1.0) * 100:.1f}% worse, "
                    f"tolerance {field_tolerance * 100:.0f}%)")
            elif (direction == "higher" and ratio > 1.0 + field_tolerance) or (
                    direction == "lower" and ratio < 1.0 - field_tolerance):
                print(f"check_bench_json: note: {section}.{field} improved "
                      f"({old:.4g} -> {new:.4g}); consider refreshing the "
                      "checked-in baseline")
    if warnings:
        # Advisory only: wall-clock ratios flake on shared CI runners, so a
        # miss is surfaced loudly (with the metric names) but never fatal.
        names = ", ".join(w.split(" regressed:")[0] for w in warnings)
        for w in warnings:
            print(f"check_bench_json: WARNING (advisory): {w}", file=sys.stderr)
        print(f"check_bench_json: WARNING: timing metric(s) past tolerance: "
              f"{names} — not failing (wall-clock metrics are advisory; "
              "re-measure on the baseline machine to confirm)",
              file=sys.stderr)
    if failures:
        names = ", ".join(f.split(" regressed:")[0] for f in failures)
        for f in failures:
            print(f"check_bench_json: FAILED: {f}", file=sys.stderr)
        print(f"check_bench_json: FAILED metric(s): {names}", file=sys.stderr)
        sys.exit(1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("measured", help="freshly written BENCH_cluster.json")
    parser.add_argument("--baseline", default="BENCH_cluster.json",
                        help="checked-in baseline to diff against")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional regression for deterministic "
                             "gate metrics (byte counts)")
    parser.add_argument("--timing-tolerance", type=float, default=0.50,
                        help="allowed fractional regression for "
                             "wall-clock-derived gate metrics")
    args = parser.parse_args()

    measured = load(args.measured)
    check_schema(measured, args.measured)
    baseline = load(args.baseline)
    check_regressions(measured, baseline, args.tolerance, args.timing_tolerance)
    print(f"check_bench_json: OK ({args.measured}: schema valid, no "
          f"deterministic gate metric >{args.tolerance * 100:.0f}% worse "
          f"than {args.baseline})")


if __name__ == "__main__":
    main()
