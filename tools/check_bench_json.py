#!/usr/bin/env python3
"""Validate BENCH_cluster.json: schema + regression vs the checked-in file.

Stdlib-only. Two jobs, both fatal on failure (exit 1):

1. Schema: every gate section the benches merge into the file must be
   present with the expected numeric fields, so a bench that silently stops
   writing its section can't pass CI on a stale file.
2. Regression: each gate metric is compared against the checked-in baseline
   (the repo's BENCH_cluster.json). A metric that moved more than its
   tolerance in the *bad* direction fails; improvements are always fine
   (CI prints a note so the baseline can be refreshed). Deterministic
   metrics (byte counts — pipeline.reduction) use --tolerance (default
   20%); wall-clock-derived ratios (dispatch.speedup,
   prepared_reexec.speedup, udf_vs_builtin_ratio) use the looser
   --timing-tolerance (default 50%), because the baseline is measured on a
   developer machine and CI runs on noisy shared runners — same-machine
   run-to-run swings of ~10% are normal, so 20% would fail spuriously.

Usage:
    check_bench_json.py <measured.json> [--baseline BENCH_cluster.json]
                        [--tolerance 0.20] [--timing-tolerance 0.50]
"""

import argparse
import json
import sys

# section -> field -> None (informational) or (direction, kind):
# direction "higher"/"lower" = which way is better; kind "timing" metrics
# derive from wall-clock ratios (loose tolerance), "exact" metrics from
# deterministic byte/row counts (strict tolerance).
SCHEMA = {
    "dispatch": {
        "spawn_per_call_ns": None,  # informational, no direction gated
        "worker_pool_ns": None,
        "speedup": ("higher", "timing"),
    },
    "prepared_reexec": {
        "cold_execute_s": None,
        "prepared_reexec_s": None,
        "speedup": ("higher", "timing"),
        "reexec_repartitions": None,
    },
    "udf_repair": {
        "builtin_agg_s": None,
        "udf_agg_s": None,
        "udf_vs_builtin_ratio": ("lower", "timing"),
        "repairs_applied": None,
    },
    "pipeline": {
        "peak_materialized_bytes": None,
        "peak_pipelined_bytes": None,
        "reduction": ("higher", "exact"),
        "morsels": None,
        "violations_identical": None,
    },
}


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except FileNotFoundError:
        sys.exit(f"check_bench_json: {path}: file not found")
    except json.JSONDecodeError as e:
        sys.exit(f"check_bench_json: {path}: invalid JSON: {e}")


def check_schema(doc, path):
    errors = []
    for section, fields in SCHEMA.items():
        if section not in doc:
            errors.append(f"missing section {section!r}")
            continue
        if not isinstance(doc[section], dict):
            errors.append(f"section {section!r} is not an object")
            continue
        for field in fields:
            value = doc[section].get(field)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors.append(f"{section}.{field} missing or non-numeric: {value!r}")
    if errors:
        for e in errors:
            print(f"check_bench_json: {path}: {e}", file=sys.stderr)
        sys.exit(1)


def check_regressions(measured, baseline, tolerance, timing_tolerance):
    """Fails when a gated metric is >tolerance worse than the baseline."""
    failures = []
    for section, fields in SCHEMA.items():
        base_section = baseline.get(section)
        if not isinstance(base_section, dict):
            # Baseline predates this section (first run after a new gate
            # lands): nothing to regress against yet.
            print(f"check_bench_json: note: baseline has no {section!r} section; "
                  "regression check skipped for it")
            continue
        for field, gate in fields.items():
            if gate is None:
                continue
            direction, kind = gate
            field_tolerance = timing_tolerance if kind == "timing" else tolerance
            new = measured[section][field]
            old = base_section.get(field)
            if not isinstance(old, (int, float)) or isinstance(old, bool) or old <= 0:
                continue
            ratio = new / old
            if direction == "higher" and ratio < 1.0 - field_tolerance:
                failures.append(
                    f"{section}.{field} regressed: {new:.4g} vs baseline "
                    f"{old:.4g} ({(1.0 - ratio) * 100:.1f}% worse, "
                    f"tolerance {field_tolerance * 100:.0f}%)")
            elif direction == "lower" and ratio > 1.0 + field_tolerance:
                failures.append(
                    f"{section}.{field} regressed: {new:.4g} vs baseline "
                    f"{old:.4g} ({(ratio - 1.0) * 100:.1f}% worse, "
                    f"tolerance {field_tolerance * 100:.0f}%)")
            elif (direction == "higher" and ratio > 1.0 + field_tolerance) or (
                    direction == "lower" and ratio < 1.0 - field_tolerance):
                print(f"check_bench_json: note: {section}.{field} improved "
                      f"({old:.4g} -> {new:.4g}); consider refreshing the "
                      "checked-in baseline")
    if failures:
        for f in failures:
            print(f"check_bench_json: FAILED: {f}", file=sys.stderr)
        sys.exit(1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("measured", help="freshly written BENCH_cluster.json")
    parser.add_argument("--baseline", default="BENCH_cluster.json",
                        help="checked-in baseline to diff against")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional regression for deterministic "
                             "gate metrics (byte counts)")
    parser.add_argument("--timing-tolerance", type=float, default=0.50,
                        help="allowed fractional regression for "
                             "wall-clock-derived gate metrics")
    args = parser.parse_args()

    measured = load(args.measured)
    check_schema(measured, args.measured)
    baseline = load(args.baseline)
    check_regressions(measured, baseline, args.tolerance, args.timing_tolerance)
    print(f"check_bench_json: OK ({args.measured}: schema valid, no gate "
          f"metric >{args.tolerance * 100:.0f}% worse than {args.baseline})")


if __name__ == "__main__":
    main()
